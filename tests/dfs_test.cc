#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/dfs/dfs.h"
#include "src/sim/params.h"
#include "src/sim/simulation.h"

namespace splitft {
namespace {

// Pinned to the seed-calibrated single-pipe model (num_servers = 1): these
// tests assert the calibrated latency arithmetic. Striped behaviour is
// covered by StripedDfsTest below.
class DfsTest : public ::testing::Test {
 protected:
  static SimParams SinglePipeParams() {
    SimParams p;
    p.dfs.num_servers = 1;
    return p;
  }

  DfsTest()
      : params_(SinglePipeParams()),
        cluster_(&sim_, &params_),
        client_(&cluster_, "app-server") {}

  Simulation sim_;
  SimParams params_;
  DfsCluster cluster_;
  DfsClient client_;
};

TEST_F(DfsTest, CreateWriteSyncRead) {
  auto file = client_.Open("/data/f1");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("hello ").ok());
  ASSERT_TRUE((*file)->Append("world").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  auto data = (*file)->Read(0, 11);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "hello world");
}

TEST_F(DfsTest, OpenWithoutCreateFailsOnMissing) {
  DfsOpenOptions opts;
  opts.create = false;
  EXPECT_FALSE(client_.Open("/missing", opts).ok());
}

TEST_F(DfsTest, ReadSeesUnflushedWrites) {
  auto file = client_.Open("/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("buffered").ok());
  auto data = (*file)->Read(0, 8);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "buffered");  // POSIX: reads see the page cache
}

TEST_F(DfsTest, CrashLosesDirtyDataButKeepsSynced) {
  auto file = client_.Open("/wal");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("durable|").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append("volatile").ok());

  client_.SimulateCrash();

  // Handle from before the crash is unusable.
  EXPECT_FALSE((*file)->Append("x").ok());

  auto reopened = client_.Open("/wal");
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->Size(), 8u);
  auto data = (*reopened)->Read(0, 100);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "durable|");
}

TEST_F(DfsTest, PositionalOverwrite) {
  auto file = client_.Open("/circular");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("AAAAAAAA").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Write(2, "BB").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  auto data = (*file)->Read(0, 8);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "AABBAAAA");
  EXPECT_EQ((*file)->Size(), 8u);
}

TEST_F(DfsTest, SyncChargesHighFixedLatency) {
  auto file = client_.Open("/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(std::string(128, 'x')).ok());
  SimTime before = sim_.Now();
  ASSERT_TRUE((*file)->Sync().ok());
  SimTime elapsed = sim_.Now() - before;
  EXPECT_GT(elapsed, Millis(1.5));
  EXPECT_LT(elapsed, Millis(3.5));
}

TEST_F(DfsTest, BufferedWriteIsCheap) {
  auto file = client_.Open("/f");
  ASSERT_TRUE(file.ok());
  SimTime before = sim_.Now();
  ASSERT_TRUE((*file)->Append(std::string(128, 'x')).ok());
  EXPECT_LT(sim_.Now() - before, Micros(5));
}

TEST_F(DfsTest, EmptySyncIsFree) {
  auto file = client_.Open("/f");
  ASSERT_TRUE(file.ok());
  SimTime before = sim_.Now();
  ASSERT_TRUE((*file)->Sync().ok());
  EXPECT_EQ(sim_.Now(), before);
  EXPECT_EQ(cluster_.sync_ops(), 0u);
}

TEST_F(DfsTest, BackgroundSyncDoesNotBlockCaller) {
  auto file = client_.Open("/sstable");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(std::string(8 << 20, 's')).ok());
  SimTime before = sim_.Now();
  ASSERT_TRUE((*file)->Sync(/*foreground=*/false).ok());
  EXPECT_EQ(sim_.Now(), before);  // caller did not wait
  // Data is durable nonetheless.
  client_.SimulateCrash();
  auto reopened = client_.Open("/sstable");
  EXPECT_EQ((*reopened)->Size(), static_cast<uint64_t>(8 << 20));
}

TEST_F(DfsTest, ForegroundSyncQueuesBehindBackgroundWrite) {
  // A large background compaction write occupies the backend pipe; a small
  // foreground fsync issued right after must wait for it (write stalls).
  auto big = client_.Open("/sstable");
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE((*big)->Append(std::string(64 << 20, 's')).ok());
  ASSERT_TRUE((*big)->Sync(/*foreground=*/false).ok());

  auto wal = client_.Open("/wal");
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append("tiny").ok());
  SimTime before = sim_.Now();
  ASSERT_TRUE((*wal)->Sync().ok());
  SimTime elapsed = sim_.Now() - before;
  // 64 MiB at ~0.7 B/ns is ~96 ms; the small sync had to queue behind it.
  EXPECT_GT(elapsed, Millis(50));
}

TEST_F(DfsTest, UnlinkRemovesFile) {
  auto file = client_.Open("/tmp1");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("x").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE(client_.Unlink("/tmp1").ok());
  EXPECT_FALSE(client_.Exists("/tmp1"));
  EXPECT_FALSE((*file)->Append("y").ok());
  EXPECT_EQ(client_.Unlink("/tmp1").code(), StatusCode::kNotFound);
}

TEST_F(DfsTest, RenameMovesContent) {
  auto file = client_.Open("/old");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("payload").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE(client_.Rename("/old", "/new").ok());
  EXPECT_FALSE(client_.Exists("/old"));
  auto renamed = client_.Open("/new");
  ASSERT_TRUE(renamed.ok());
  auto data = (*renamed)->Read(0, 7);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "payload");
}

TEST_F(DfsTest, ListFiltersByPrefix) {
  for (const char* p : {"/db/sst/1", "/db/sst/2", "/db/wal/1", "/other"}) {
    auto f = client_.Open(p);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Sync().ok());
  }
  auto ssts = client_.List("/db/sst/");
  EXPECT_EQ(ssts.size(), 2u);
  EXPECT_EQ(client_.List("/db/").size(), 3u);
  EXPECT_EQ(client_.List("/nope").size(), 0u);
}

TEST_F(DfsTest, PeriodicFlusherMakesWeakDataEventuallyDurable) {
  auto file = client_.Open("/aof");
  ASSERT_TRUE(file.ok());
  client_.StartPeriodicFlusher();
  ASSERT_TRUE((*file)->Append("acknowledged-but-unsynced").ok());
  // Before the flush interval elapses, a crash would lose the data; run the
  // sim past the interval.
  sim_.RunUntil(sim_.Now() + params_.dfs.flush_interval + Millis(1));
  client_.StopPeriodicFlusher();
  client_.SimulateCrash();
  auto reopened = client_.Open("/aof");
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->Size(), 25u);
}

TEST_F(DfsTest, CachedReadIsFasterThanFirstRead) {
  auto file = client_.Open("/log");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(std::string(1 << 20, 'z')).ok());
  ASSERT_TRUE((*file)->Sync().ok());
  client_.SimulateCrash();  // drop the page cache

  auto f2 = client_.Open("/log");
  ASSERT_TRUE(f2.ok());
  SimTime t0 = sim_.Now();
  ASSERT_TRUE((*f2)->Read(0, 4096).ok());
  SimTime miss = sim_.Now() - t0;

  t0 = sim_.Now();
  ASSERT_TRUE((*f2)->Read(4096, 4096).ok());
  SimTime hit = sim_.Now() - t0;

  EXPECT_GT(miss, hit * 10);
}

TEST_F(DfsTest, DirectIoBypassesCache) {
  {
    auto file = client_.Open("/log");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(std::string(64 << 10, 'z')).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  DfsOpenOptions opts;
  opts.direct_io = true;
  auto file = client_.Open("/log", opts);
  ASSERT_TRUE(file.ok());
  SimTime t0 = sim_.Now();
  ASSERT_TRUE((*file)->Read(0, 128).ok());
  SimTime first = sim_.Now() - t0;
  t0 = sim_.Now();
  ASSERT_TRUE((*file)->Read(0, 128).ok());
  SimTime second = sim_.Now() - t0;
  // No caching: both reads pay the remote cost.
  EXPECT_GT(second, first / 2);
  EXPECT_GT(second, Millis(1));
}

TEST_F(DfsTest, ReadPastEofReturnsShortData) {
  auto file = client_.Open("/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("abc").ok());
  auto data = (*file)->Read(1, 100);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "bc");
  auto past = (*file)->Read(10, 5);
  ASSERT_TRUE(past.ok());
  EXPECT_EQ(*past, "");
}

TEST_F(DfsTest, TraceRecordsSyncSizesAndDeletes) {
  IoTraceSink trace;
  cluster_.set_trace(&trace);
  auto file = client_.Open("/wal-1");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(std::string(200, 'x')).ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE(client_.Unlink("/wal-1").ok());
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[0].path, "/wal-1");
  EXPECT_EQ(trace.events()[0].bytes, 200u);
  EXPECT_TRUE(trace.events()[0].sync);
  EXPECT_TRUE(trace.events()[1].is_delete);
  cluster_.set_trace(nullptr);
}

// ---- dirty-range trim/split bookkeeping ------------------------------------
// The general-case overwrite path keeps dirty ranges non-overlapping; every
// edge (head trim, tail split, straddling erase) must keep dirty_bytes equal
// to the union of the ranges, or Sync() charges the wrong transfer size.

TEST_F(DfsTest, OverwriteOverlappingHeadTrimsPreviousRange) {
  auto file = client_.Open("/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Write(0, "aaaaaaaa").ok());   // [0,8)
  ASSERT_TRUE((*file)->Write(4, "BBBBBBBB").ok());   // [4,12): trims to [0,4)
  EXPECT_EQ((*file)->DirtyBytes(), 12u);
  ASSERT_TRUE((*file)->Sync().ok());
  auto data = (*file)->Read(0, 12);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "aaaaBBBBBBBB");
  EXPECT_EQ(cluster_.bytes_written(), 12u);
}

TEST_F(DfsTest, OverwriteOverlappingTailSplitsFollowingRange) {
  auto file = client_.Open("/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Write(4, "aaaaaaaa").ok());   // [4,12)
  ASSERT_TRUE((*file)->Write(0, "BBBBBBBB").ok());   // [0,8): tail [8,12) kept
  EXPECT_EQ((*file)->DirtyBytes(), 12u);
  ASSERT_TRUE((*file)->Sync().ok());
  auto data = (*file)->Read(0, 12);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "BBBBBBBBaaaa");
  EXPECT_EQ(cluster_.bytes_written(), 12u);
}

TEST_F(DfsTest, OverwriteContainedInDirtyRangeKeepsSize) {
  auto file = client_.Open("/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Write(0, "aaaaaaaaaaaa").ok());  // [0,12)
  ASSERT_TRUE((*file)->Write(4, "BBBB").ok());          // inside [0,12)
  EXPECT_EQ((*file)->DirtyBytes(), 12u);
  ASSERT_TRUE((*file)->Sync().ok());
  auto data = (*file)->Read(0, 12);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "aaaaBBBBaaaa");
  EXPECT_EQ(cluster_.bytes_written(), 12u);
}

TEST_F(DfsTest, OverwriteStraddlingMultipleRangesCoalesces) {
  auto file = client_.Open("/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Write(0, "aaaa").ok());       // [0,4)
  ASSERT_TRUE((*file)->Write(8, "cccc").ok());       // [8,12)
  EXPECT_EQ((*file)->DirtyBytes(), 8u);
  ASSERT_TRUE((*file)->Write(2, "BBBBBBBB").ok());   // [2,10): eats into both
  EXPECT_EQ((*file)->DirtyBytes(), 12u);
  ASSERT_TRUE((*file)->Sync().ok());
  auto data = (*file)->Read(0, 12);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "aaBBBBBBBBcc");
  EXPECT_EQ(cluster_.bytes_written(), 12u);
}

TEST_F(DfsTest, OverwriteExactlyCoveringRangeReplacesIt) {
  auto file = client_.Open("/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Write(4, "aaaa").ok());   // [4,8)
  ASSERT_TRUE((*file)->Write(4, "BBBB").ok());   // same extent
  EXPECT_EQ((*file)->DirtyBytes(), 4u);
  ASSERT_TRUE((*file)->Write(0, "xxxxxxxxxxxx").ok());  // [0,12) swallows it
  EXPECT_EQ((*file)->DirtyBytes(), 12u);
  ASSERT_TRUE((*file)->Sync().ok());
  auto data = (*file)->Read(0, 12);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "xxxxxxxxxxxx");
  EXPECT_EQ(cluster_.bytes_written(), 12u);
}

TEST_F(DfsTest, AppendBetweenRangesBridgesWithoutDoubleCount) {
  auto file = client_.Open("/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Write(0, "aaaa").ok());   // [0,4)
  ASSERT_TRUE((*file)->Write(6, "cc").ok());     // [6,8)
  ASSERT_TRUE((*file)->Write(4, "BBBB").ok());   // [4,8): appends to [0,4),
                                                 // swallows [6,8)
  EXPECT_EQ((*file)->DirtyBytes(), 8u);
  ASSERT_TRUE((*file)->Sync().ok());
  auto data = (*file)->Read(0, 8);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "aaaaBBBB");
  EXPECT_EQ(cluster_.bytes_written(), 8u);
}

// ---- striped multi-server backend ------------------------------------------

class StripedDfsTest : public ::testing::Test {
 protected:
  static SimParams StripedParams(int servers) {
    SimParams p;
    p.dfs.num_servers = servers;
    return p;
  }

  explicit StripedDfsTest(int servers = 3)
      : params_(StripedParams(servers)),
        obs_{&metrics_, nullptr},
        cluster_(&sim_, &params_, obs_),
        client_(&cluster_, "app-server") {}

  Simulation sim_;
  SimParams params_;
  MetricsRegistry metrics_;
  ObsContext obs_;
  DfsCluster cluster_;
  DfsClient client_;
};

TEST_F(StripedDfsTest, SinglePipeReductionMatchesSeedArithmetic) {
  // num_servers == 1 must reproduce the seed's calibrated latency exactly.
  SimParams seed = StripedParams(1);
  Simulation sim;
  DfsCluster cluster(&sim, &seed);
  DfsClient client(&cluster, "app");
  auto file = client.Open("/f");
  ASSERT_TRUE(file.ok());
  std::string payload(1 << 20, 'x');
  ASSERT_TRUE((*file)->Append(payload).ok());
  SimTime before = sim.Now();
  ASSERT_TRUE((*file)->Sync().ok());
  EXPECT_EQ(sim.Now() - before, seed.DfsSyncWriteLatency(payload.size()));
}

TEST_F(StripedDfsTest, LargeFsyncFansOutAtLeastTwiceAsFast) {
  // The acceptance point: a 4 MiB fsync with 3 servers vs the seed pipe.
  const uint64_t kBytes = 4ull << 20;
  SimTime striped;
  {
    auto file = client_.Open("/striped");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(std::string(kBytes, 'x')).ok());
    SimTime before = sim_.Now();
    ASSERT_TRUE((*file)->Sync().ok());
    striped = sim_.Now() - before;
  }
  SimTime single = params_.DfsSyncWriteLatency(kBytes);
  EXPECT_GE(single, 2 * striped)
      << "striped=" << striped << "ns single=" << single << "ns";
}

TEST_F(StripedDfsTest, FsyncSplitsBytesAcrossAllServerCounters) {
  const uint64_t kBytes = 4ull << 20;  // 64 stripes over 3 servers
  auto file = client_.Open("/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(std::string(kBytes, 'x')).ok());
  ASSERT_TRUE((*file)->Sync().ok());
  uint64_t total = 0;
  for (int s = 0; s < cluster_.num_servers(); ++s) {
    uint64_t bytes = metrics_.CounterValue("dfs.server." + std::to_string(s) +
                                           ".bytes_written");
    EXPECT_GT(bytes, 0u) << "server " << s << " untouched";
    total += bytes;
  }
  EXPECT_EQ(total, kBytes);
  EXPECT_EQ(cluster_.bytes_written(), kBytes);
}

TEST_F(StripedDfsTest, BackgroundFlushOccupiesOnlyTouchedPipes) {
  // A file smaller than one stripe maps entirely to server 0; a background
  // flush of it must leave the other pipes idle.
  auto file = client_.Open("/small");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(std::string(1024, 'x')).ok());
  ASSERT_TRUE((*file)->Sync(/*foreground=*/false).ok());
  EXPECT_GT(cluster_.server_busy_until(0), sim_.Now());
  EXPECT_EQ(cluster_.server_busy_until(1), 0);
  EXPECT_EQ(cluster_.server_busy_until(2), 0);
}

TEST_F(StripedDfsTest, ForegroundSyncQueuesOnlyOnSharedPipes) {
  // Background write covering only server 0's stripes; a foreground sync of
  // stripes on the other servers does not stall behind it.
  auto bg = client_.Open("/bg");
  ASSERT_TRUE(bg.ok());
  ASSERT_TRUE((*bg)->Append(std::string(params_.dfs.stripe_size, 'x')).ok());
  ASSERT_TRUE((*bg)->Sync(/*foreground=*/false).ok());
  SimTime bg_done = cluster_.server_busy_until(0);
  ASSERT_GT(bg_done, sim_.Now());

  // Dirty only the second stripe (server 1) of another file.
  auto fg = client_.Open("/fg");
  ASSERT_TRUE(fg.ok());
  ASSERT_TRUE((*fg)->Write(params_.dfs.stripe_size, "tiny").ok());
  SimTime before = sim_.Now();
  ASSERT_TRUE((*fg)->Sync().ok());
  SimTime elapsed = sim_.Now() - before;
  EXPECT_LT(sim_.Now(), bg_done);  // finished while server 0 still busy
  EXPECT_EQ(elapsed, params_.dfs.stripe_client_base +
                         params_.DfsStripeWriteLeg(4));
}

TEST_F(StripedDfsTest, CrashConsistencyHoldsWithStriping) {
  auto file = client_.Open("/wal");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("durable|").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append("volatile").ok());
  client_.SimulateCrash();
  auto reopened = client_.Open("/wal");
  ASSERT_TRUE(reopened.ok());
  auto data = (*reopened)->Read(0, 100);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "durable|");  // dirty data lost, fsynced prefix kept
}

TEST_F(StripedDfsTest, FsyncWaitAndXferHistogramsSplitTheLatency) {
  // First fsync is queue-free: wait == 0, xfer == full latency. A second
  // fsync issued behind a background flush records the stall as wait.
  auto file = client_.Open("/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(std::string(1 << 20, 'x')).ok());
  SimTime before = sim_.Now();
  ASSERT_TRUE((*file)->Sync().ok());
  SimTime first = sim_.Now() - before;
  const Histogram* wait = metrics_.FindHistogram("dfs.client.fsync_wait_ns");
  const Histogram* xfer = metrics_.FindHistogram("dfs.client.fsync_xfer_ns");
  ASSERT_NE(wait, nullptr);
  ASSERT_NE(xfer, nullptr);
  EXPECT_EQ(wait->max(), 0);
  EXPECT_EQ(xfer->max(), first);

  auto bg = client_.Open("/bg");
  ASSERT_TRUE(bg.ok());
  ASSERT_TRUE((*bg)->Append(std::string(32 << 20, 'x')).ok());
  ASSERT_TRUE((*bg)->Sync(/*foreground=*/false).ok());
  ASSERT_TRUE((*file)->Append(std::string(1 << 20, 'y')).ok());
  ASSERT_TRUE((*file)->Sync().ok());
  EXPECT_GT(wait->max(), 0);  // the stall behind the flush is attributed
  // Three syncs recorded: the first fsync, the background bulk sync, and
  // the queued fsync (background syncs are fsyncs too, just non-blocking).
  EXPECT_EQ(wait->count(), 3u);
  EXPECT_EQ(xfer->count(), 3u);
}

TEST_F(StripedDfsTest, DirectIoReadFansOut) {
  const uint64_t kBytes = 4ull << 20;
  {
    auto file = client_.Open("/data");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(std::string(kBytes, 'z')).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  DfsOpenOptions opts;
  opts.direct_io = true;
  auto file = client_.Open("/data", opts);
  ASSERT_TRUE(file.ok());
  SimTime before = sim_.Now();
  auto data = (*file)->Read(0, kBytes);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), kBytes);
  SimTime striped = sim_.Now() - before;
  SimTime single =
      params_.dfs.remote_read_base +
      static_cast<SimTime>(static_cast<double>(kBytes) /
                           params_.dfs.read_bytes_per_ns);
  EXPECT_LT(2 * striped, single);
  // Per-server read counters cover every byte exactly once.
  uint64_t total = 0;
  for (int s = 0; s < cluster_.num_servers(); ++s) {
    total += metrics_.CounterValue("dfs.server." + std::to_string(s) +
                                   ".bytes_read");
  }
  EXPECT_EQ(total, kBytes);
}

TEST_F(StripedDfsTest, CacheMissReadBatchesWindowsIntoOneFanOut) {
  const uint64_t kBytes = 8ull << 20;  // two readahead windows
  {
    auto file = client_.Open("/log");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(std::string(kBytes, 'z')).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  client_.SimulateCrash();  // drop the page cache
  auto file = client_.Open("/log");
  ASSERT_TRUE(file.ok());
  SimTime before = sim_.Now();
  ASSERT_TRUE((*file)->Read(0, kBytes).ok());
  SimTime striped = sim_.Now() - before;
  // Both missing windows fetch in one fan-out: the per-server read base is
  // paid once, and the 8 MiB spreads over three pipes.
  SimTime serial_single =
      2 * (params_.dfs.remote_read_base +
           static_cast<SimTime>(static_cast<double>(kBytes / 2) /
                                params_.dfs.read_bytes_per_ns));
  EXPECT_LT(2 * striped, serial_single);
  // Subsequent read is a cache hit and stays cheap.
  before = sim_.Now();
  ASSERT_TRUE((*file)->Read(0, 4096).ok());
  EXPECT_LT(sim_.Now() - before, Micros(10));
}

TEST_F(StripedDfsTest, StripeMappingIsDeterministicRoundRobin) {
  // 4 MiB at 64 KiB stripes over 3 servers: 64 stripes → 22/21/21 split.
  const uint64_t kBytes = 4ull << 20;
  auto file = client_.Open("/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(std::string(kBytes, 'x')).ok());
  ASSERT_TRUE((*file)->Sync().ok());
  uint64_t stripe = params_.dfs.stripe_size;
  EXPECT_EQ(metrics_.CounterValue("dfs.server.0.bytes_written"), 22 * stripe);
  EXPECT_EQ(metrics_.CounterValue("dfs.server.1.bytes_written"), 21 * stripe);
  EXPECT_EQ(metrics_.CounterValue("dfs.server.2.bytes_written"), 21 * stripe);
}

// Property sweep: the modeled sync-write throughput must grow monotonically
// with block size (shape of Fig 1d).
class DfsThroughputSweep : public DfsTest,
                           public ::testing::WithParamInterface<uint64_t> {};

TEST_P(DfsThroughputSweep, ThroughputMonotoneInBlockSize) {
  uint64_t block = GetParam();
  double small_tput =
      static_cast<double>(block) /
      static_cast<double>(params_.DfsSyncWriteLatency(block));
  double big_tput =
      static_cast<double>(block * 8) /
      static_cast<double>(params_.DfsSyncWriteLatency(block * 8));
  EXPECT_GT(big_tput, small_tput);
}

INSTANTIATE_TEST_SUITE_P(Blocks, DfsThroughputSweep,
                         ::testing::Values(512, 4096, 65536, 1 << 20,
                                           8 << 20));

}  // namespace
}  // namespace splitft
