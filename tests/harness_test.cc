// Harness tests: closed-loop mechanics plus end-to-end sanity on the
// paper's headline performance shapes (who wins and by roughly how much).
#include <gtest/gtest.h>

#include <memory>

#include "src/harness/closed_loop.h"
#include "src/harness/testbed.h"

namespace splitft {
namespace {

HarnessResult RunKvStore(DurabilityMode mode, YcsbWorkloadKind kind,
                         int clients, uint64_t target_ops,
                         uint64_t records = 20000) {
  Testbed testbed;
  auto server = testbed.MakeServer(
      "kv-bench", {.mode = mode, .ncl_capacity = 32ull << 20});
  KvStoreOptions options;
  options.mode = mode;
  auto store = testbed.StartKvStore(server.get(), options);
  EXPECT_TRUE(store.ok());
  EXPECT_TRUE(Testbed::LoadRecords(store->get(), records).ok());

  YcsbWorkload workload(kind, records, 7);
  HarnessOptions harness_options;
  harness_options.num_clients = clients;
  harness_options.target_ops = target_ops;
  ClosedLoopHarness harness(testbed.sim(), store->get(), &workload,
                            harness_options);
  return harness.Run();
}

TEST(HarnessTest, CompletesTargetOps) {
  HarnessResult result = RunKvStore(DurabilityMode::kSplitFt,
                                    YcsbWorkloadKind::kWriteOnly, 8, 5000);
  EXPECT_GE(result.ops, 5000u);
  EXPECT_GT(result.duration, 0);
  EXPECT_GT(result.throughput_kops, 0.0);
  EXPECT_EQ(result.latency.count(), result.ops);
}

TEST(HarnessTest, LatencyIncludesRttFloor) {
  HarnessResult result = RunKvStore(DurabilityMode::kSplitFt,
                                    YcsbWorkloadKind::kWriteOnly, 1, 1000);
  // Single client: latency >= service time; throughput bounded by
  // 1 / (rtt + service).
  EXPECT_GT(result.latency.Mean(), static_cast<double>(Micros(4)));
  EXPECT_LT(result.latency.Mean(), static_cast<double>(Micros(200)));
}

TEST(HarnessTest, TimelineSamplesCoverRun) {
  Testbed testbed;
  auto server = testbed.MakeServer("kv-tl");
  KvStoreOptions options;
  options.mode = DurabilityMode::kSplitFt;
  auto store = testbed.StartKvStore(server.get(), options);
  ASSERT_TRUE(store.ok());
  YcsbWorkload workload(YcsbWorkloadKind::kWriteOnly, 5000, 7);
  HarnessOptions harness_options;
  harness_options.num_clients = 8;
  harness_options.target_ops = 20000;
  harness_options.sample_interval = Millis(10);
  ClosedLoopHarness harness(testbed.sim(), store->get(), &workload,
                            harness_options);
  HarnessResult result = harness.Run();
  ASSERT_FALSE(result.timeline.empty());
  uint64_t total = 0;
  for (const TimelineSample& s : result.timeline) {
    total += static_cast<uint64_t>(s.kops * 1000.0 *
                                   (static_cast<double>(Millis(10)) / 1e9) +
                                   0.5);
  }
  EXPECT_NEAR(static_cast<double>(total), static_cast<double>(result.ops),
              static_cast<double>(result.ops) * 0.02);
}

// ---- Paper-shape sanity checks ---------------------------------------------

TEST(HarnessShapeTest, WriteOnlyStrongIsFarSlowerThanSplitFt) {
  // Table 1 / Fig 9 shape: strong mode loses by an order of magnitude or
  // more on a write-only workload; SplitFT approximates weak.
  HarnessResult strong = RunKvStore(DurabilityMode::kStrong,
                                    YcsbWorkloadKind::kWriteOnly, 12, 6000);
  HarnessResult weak = RunKvStore(DurabilityMode::kWeak,
                                  YcsbWorkloadKind::kWriteOnly, 12, 30000);
  HarnessResult splitft = RunKvStore(DurabilityMode::kSplitFt,
                                     YcsbWorkloadKind::kWriteOnly, 12, 30000);

  EXPECT_GT(splitft.throughput_kops, strong.throughput_kops * 8)
      << "splitft=" << splitft.throughput_kops
      << " strong=" << strong.throughput_kops;
  // SplitFT within ~25% of weak (paper: 0.1%-10% overhead, sometimes
  // slightly faster).
  EXPECT_GT(splitft.throughput_kops, weak.throughput_kops * 0.75);
  // Strong latency is orders of magnitude higher.
  EXPECT_GT(strong.latency.Mean(), splitft.latency.Mean() * 10);
}

TEST(HarnessShapeTest, ReadOnlyGapCloses) {
  // Fig 10 YCSB-C: all three configurations converge on a read-only
  // workload.
  HarnessResult strong =
      RunKvStore(DurabilityMode::kStrong, YcsbWorkloadKind::kC, 12, 8000);
  HarnessResult splitft =
      RunKvStore(DurabilityMode::kSplitFt, YcsbWorkloadKind::kC, 12, 8000);
  double ratio = splitft.throughput_kops / strong.throughput_kops;
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST(HarnessShapeTest, SqliteUnbatchedStrongIsSlowest) {
  Testbed testbed;
  double tput[3];
  int idx = 0;
  for (DurabilityMode mode :
       {DurabilityMode::kStrong, DurabilityMode::kWeak,
        DurabilityMode::kSplitFt}) {
    auto server = testbed.MakeServer(
        "sql-" + std::string(DurabilityModeName(mode)),
        {.mode = mode,
         .ncl_capacity = 8ull << 20});
    SqliteLiteOptions options;
    options.mode = mode;
    auto db = testbed.StartSqlite(server.get(), options);
    ASSERT_TRUE(db.ok());
    YcsbWorkload workload(YcsbWorkloadKind::kWriteOnly, 2000, 7);
    HarnessOptions harness_options;
    harness_options.num_clients = 1;  // SQLite is single threaded (§5)
    harness_options.target_ops = mode == DurabilityMode::kStrong ? 800 : 5000;
    ClosedLoopHarness harness(testbed.sim(), db->get(), &workload,
                              harness_options);
    tput[idx++] = harness.Run().throughput_kops;
  }
  // strong << weak ~ splitft.
  EXPECT_LT(tput[0] * 5, tput[2]);
  EXPECT_GT(tput[2], tput[1] * 0.7);
}

TEST(HarnessShapeTest, RedisHeadOfLineBlockingUnderStrong) {
  // Fig 10(b): strong-mode Redis is slow even on read-heavy workloads
  // because reads queue behind synchronous AOF flushes.
  auto run_redis = [](DurabilityMode mode, uint64_t ops) {
    Testbed testbed;
    auto server = testbed.MakeServer(
        "redis-" + std::string(DurabilityModeName(mode)),
        {.mode = mode,
         .ncl_capacity = 16ull << 20});
    RedisOptions options;
    options.mode = mode;
    options.aof_rewrite_bytes = 16 << 20;
    options.aof_capacity = 32 << 20;
    auto redis = testbed.StartRedis(server.get(), options);
    EXPECT_TRUE(redis.ok());
    EXPECT_TRUE(Testbed::LoadRecords(redis->get(), 20000).ok());
    YcsbWorkload workload(YcsbWorkloadKind::kB, 20000, 7);  // 95% reads
    HarnessOptions harness_options;
    harness_options.num_clients = 20;
    harness_options.target_ops = ops;
    ClosedLoopHarness harness(testbed.sim(), redis->get(), &workload,
                              harness_options);
    return harness.Run().throughput_kops;
  };
  double strong = run_redis(DurabilityMode::kStrong, 6000);
  double splitft = run_redis(DurabilityMode::kSplitFt, 30000);
  // Despite 95% reads, strong Redis is several times slower: reads are
  // blocked by the writes ahead of them.
  EXPECT_GT(splitft, strong * 3)
      << "splitft=" << splitft << " strong=" << strong;
}

TEST(MakeServerTest, LeaseConflictSurfacesInStartStatus) {
  // Regression for the dropped-error bug: MakeServer used to (void) the
  // SplitFs::Start status, so a second live instance of an app ran without
  // the single-instance lease and nobody could tell.
  Testbed testbed;
  auto first = testbed.MakeServer("lease-app");
  EXPECT_TRUE(first->start_status.ok()) << first->start_status.ToString();
  auto second = testbed.MakeServer("lease-app");
  EXPECT_EQ(second->start_status.code(), StatusCode::kAborted);
  // Graceful shutdown of both instances releases the lease, so a fresh
  // server acquires it again (the leak half of the same bug).
  second.reset();
  first.reset();
  auto third = testbed.MakeServer("lease-app");
  EXPECT_TRUE(third->start_status.ok()) << third->start_status.ToString();
}

}  // namespace
}  // namespace splitft
