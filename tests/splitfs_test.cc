#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/controller/controller.h"
#include "src/dfs/dfs.h"
#include "src/ncl/peer.h"
#include "src/ncl/peer_directory.h"
#include "src/rdma/fabric.h"
#include "src/sim/params.h"
#include "src/sim/simulation.h"
#include "src/splitft/split_fs.h"

namespace splitft {
namespace {

class SplitFsTest : public ::testing::Test {
 protected:
  SplitFsTest()
      : fabric_(&sim_, &params_),
        controller_(&sim_, &params_),
        cluster_(&sim_, &params_),
        dfs_(&cluster_, "app-server") {
    app_node_ = fabric_.AddNode("app-server");
    for (int i = 0; i < 4; ++i) {
      auto peer = std::make_unique<LogPeer>("p" + std::to_string(i), &fabric_,
                                            &controller_, 512ull << 20);
      EXPECT_TRUE(peer->Start().ok());
      directory_.Register(peer.get());
      peers_.push_back(std::move(peer));
    }
  }

  std::unique_ptr<SplitFs> MakeFs(const std::string& app = "split-app") {
    NclConfig config;
    config.app_id = app;
    config.default_capacity = 1 << 20;
    return std::make_unique<SplitFs>(config, &dfs_, &fabric_, &controller_,
                                     &directory_, app_node_);
  }

  std::string ReadAll(SplitFile* file) {
    auto data = file->Read(0, file->Size());
    EXPECT_TRUE(data.ok());
    return data.ok() ? *data : std::string();
  }

  Simulation sim_;
  SimParams params_;
  Fabric fabric_;
  Controller controller_;
  DfsCluster cluster_;
  DfsClient dfs_;
  PeerDirectory directory_;
  std::vector<std::unique_ptr<LogPeer>> peers_;
  NodeId app_node_;
};

TEST_F(SplitFsTest, NonNclFilesGoToDfs) {
  auto fs = MakeFs();
  SplitOpenOptions opts;
  auto file = fs->Open("/db/sstable-1", opts);
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE((*file)->ncl_backed());
  ASSERT_TRUE((*file)->Append("bulk-data").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  EXPECT_TRUE(dfs_.Exists("/db/sstable-1"));
}

TEST_F(SplitFsTest, ONclFilesGoToNcl) {
  auto fs = MakeFs();
  SplitOpenOptions opts;
  opts.oncl = true;
  auto file = fs->Open("/db/wal-1", opts);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE((*file)->ncl_backed());
  ASSERT_TRUE((*file)->Append("log-record").ok());
  EXPECT_FALSE(dfs_.Exists("/db/wal-1"));
  EXPECT_TRUE(fs->ncl()->Exists("/db/wal-1"));
}

TEST_F(SplitFsTest, SyncOnNclFileDrainsThenIsFree) {
  auto fs = MakeFs();
  SplitOpenOptions opts;
  opts.oncl = true;
  auto file = fs->Open("/wal", opts);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("x").ok());
  // Appends ride the in-flight window, so the first Sync drains it...
  SimTime before = sim_.Now();
  ASSERT_TRUE((*file)->Sync().ok());
  EXPECT_GT(sim_.Now(), before);
  // ...and a Sync with nothing outstanding is free.
  before = sim_.Now();
  ASSERT_TRUE((*file)->Sync().ok());
  EXPECT_EQ(sim_.Now(), before);
}

TEST_F(SplitFsTest, SyncOnDfsFilePaysDfsCost) {
  auto fs = MakeFs();
  auto file = fs->Open("/bulk", SplitOpenOptions{});
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("x").ok());
  SimTime before = sim_.Now();
  ASSERT_TRUE((*file)->Sync().ok());
  EXPECT_GT(sim_.Now() - before, Millis(1));
}

TEST_F(SplitFsTest, ReadBackgroundChargesPipeWithoutBlockingCaller) {
  auto fs = MakeFs();
  {
    auto file = fs->Open("/sstable", SplitOpenOptions{});
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(std::string(1 << 20, 's')).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  dfs_.SimulateCrash();  // drop the page cache so the read goes remote

  auto file = fs->Open("/sstable", SplitOpenOptions{});
  ASSERT_TRUE(file.ok());
  SimTime before = sim_.Now();
  SimTime busy_before = cluster_.pipe_busy_until();
  auto data = (*file)->ReadBackground(0, 1 << 20);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), static_cast<size_t>(1 << 20));
  EXPECT_EQ(sim_.Now(), before);  // compaction input read did not block
  EXPECT_GT(cluster_.pipe_busy_until(), busy_before);  // but occupied pipes
}

TEST_F(SplitFsTest, CrashRecoveryAcrossBothLayers) {
  {
    auto fs = MakeFs();
    ASSERT_TRUE(fs->Start().ok());
    SplitOpenOptions wal_opts;
    wal_opts.oncl = true;
    auto wal = fs->Open("/db/wal", wal_opts);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("wal-records").ok());

    auto sst = fs->Open("/db/sst-1", SplitOpenOptions{});
    ASSERT_TRUE(sst.ok());
    ASSERT_TRUE((*sst)->Append("sst-data").ok());
    ASSERT_TRUE((*sst)->Sync().ok());
    fs->SimulateCrash();
  }
  sim_.RunUntilIdle();

  auto fs2 = MakeFs();
  ASSERT_TRUE(fs2->Start().ok());
  SplitOpenOptions wal_opts;
  wal_opts.oncl = true;
  auto wal = fs2->Open("/db/wal", wal_opts);  // triggers NCL recovery
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(ReadAll(wal->get()), "wal-records");
  auto sst = fs2->Open("/db/sst-1", SplitOpenOptions{});
  ASSERT_TRUE(sst.ok());
  EXPECT_EQ(ReadAll(sst->get()), "sst-data");
}

TEST_F(SplitFsTest, SingleInstanceLeaseEnforced) {
  auto fs1 = MakeFs();
  ASSERT_TRUE(fs1->Start().ok());
  auto fs2 = MakeFs();
  EXPECT_EQ(fs2->Start().code(), StatusCode::kAborted);
  // After the first instance crashes, the second can start.
  fs1->SimulateCrash();
  EXPECT_TRUE(fs2->Start().ok());
}

TEST_F(SplitFsTest, GracefulDestructionReleasesTheLease) {
  // Regression for a dropped-error bug the [[nodiscard]] sweep surfaced:
  // ~SplitFs never released the server lease, so every later instance of
  // the same app failed Start with kAborted — and the failure was
  // (void)-discarded by the harness, leaving the successor leaseless.
  auto fs1 = MakeFs();
  ASSERT_TRUE(fs1->Start().ok());
  fs1.reset();  // graceful shutdown, not a crash
  auto fs2 = MakeFs();
  EXPECT_TRUE(fs2->Start().ok());
}

TEST_F(SplitFsTest, UnlinkRoutesToTheRightLayer) {
  auto fs = MakeFs();
  SplitOpenOptions ncl_opts;
  ncl_opts.oncl = true;
  ASSERT_TRUE(fs->Open("/wal", ncl_opts).ok());
  ASSERT_TRUE(fs->Open("/sst", SplitOpenOptions{}).ok());

  ASSERT_TRUE(fs->Unlink("/wal").ok());
  EXPECT_FALSE(fs->ncl()->Exists("/wal"));
  for (auto& peer : peers_) {
    EXPECT_EQ(peer->active_regions(), 0u);
  }
  ASSERT_TRUE(fs->Unlink("/sst").ok());
  EXPECT_FALSE(fs->Exists("/sst"));
  EXPECT_EQ(fs->Unlink("/ghost").code(), StatusCode::kNotFound);
}

TEST_F(SplitFsTest, WalRotationPattern) {
  // The RocksDB pattern: write wal-1, checkpoint to an sstable, delete
  // wal-1, create wal-2 (Table 2's delete-reclaim policy).
  auto fs = MakeFs();
  SplitOpenOptions wal_opts;
  wal_opts.oncl = true;
  auto wal1 = fs->Open("/db/wal-1", wal_opts);
  ASSERT_TRUE(wal1.ok());
  ASSERT_TRUE((*wal1)->Append("memtable-contents").ok());

  auto sst = fs->Open("/db/sst-1", SplitOpenOptions{});
  ASSERT_TRUE(sst.ok());
  ASSERT_TRUE((*sst)->Append("compacted").ok());
  ASSERT_TRUE((*sst)->SyncBackground().ok());

  wal1->reset();
  ASSERT_TRUE(fs->Unlink("/db/wal-1").ok());
  auto wal2 = fs->Open("/db/wal-2", wal_opts);
  ASSERT_TRUE(wal2.ok());
  ASSERT_TRUE((*wal2)->Append("new-records").ok());
  EXPECT_EQ(ReadAll(wal2->get()), "new-records");
}

// ------------------------------------------------- fine-grained splitting --

TEST_F(SplitFsTest, FineGrainedRoutesBySize) {
  auto fs = MakeFs();
  SplitOpenOptions opts;
  opts.fine_grained = true;
  opts.small_write_threshold = 1024;
  auto file = fs->Open("/mixed", opts);
  ASSERT_TRUE(file.ok());

  uint64_t dfs_before = cluster_.bytes_written();
  ASSERT_TRUE((*file)->WriteAt(0, std::string(100, 's')).ok());  // small
  EXPECT_EQ(cluster_.bytes_written(), dfs_before);  // did not touch the dfs

  ASSERT_TRUE((*file)->WriteAt(4096, std::string(8192, 'L')).ok());  // large
  EXPECT_GT(cluster_.bytes_written(), dfs_before);

  std::string all = ReadAll(file->get());
  EXPECT_EQ(all.substr(0, 100), std::string(100, 's'));
  EXPECT_EQ(all.substr(4096, 8192), std::string(8192, 'L'));
}

TEST_F(SplitFsTest, FineGrainedRecoversInterleavedWrites) {
  // Order matters: small, then large overlapping, then small overlapping.
  {
    auto fs = MakeFs();
    SplitOpenOptions opts;
    opts.fine_grained = true;
    opts.small_write_threshold = 1024;
    auto file = fs->Open("/mixed", opts);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->WriteAt(0, std::string(512, 'a')).ok());     // small
    ASSERT_TRUE((*file)->WriteAt(0, std::string(4096, 'B')).ok());    // large
    ASSERT_TRUE((*file)->WriteAt(100, std::string(16, 'c')).ok());    // small
    fs->SimulateCrash();
  }
  sim_.RunUntilIdle();

  auto fs2 = MakeFs();
  SplitOpenOptions opts;
  opts.fine_grained = true;
  opts.small_write_threshold = 1024;
  auto file = fs2->Open("/mixed", opts);
  ASSERT_TRUE(file.ok());
  std::string all = ReadAll(file->get());
  ASSERT_EQ(all.size(), 4096u);
  EXPECT_EQ(all.substr(0, 100), std::string(100, 'B'));
  EXPECT_EQ(all.substr(100, 16), std::string(16, 'c'));
  EXPECT_EQ(all.substr(116, 4096 - 116), std::string(4096 - 116, 'B'));
}

TEST_F(SplitFsTest, FineGrainedJournalCheckpointOnFull) {
  auto fs = MakeFs();
  SplitOpenOptions opts;
  opts.fine_grained = true;
  opts.small_write_threshold = 1024;
  opts.ncl_capacity = 4096;  // tiny journal to force checkpoints
  auto file = fs->Open("/mixed", opts);
  ASSERT_TRUE(file.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*file)->WriteAt(i * 100, std::string(100, 'x')).ok());
  }
  EXPECT_EQ((*file)->Size(), 10000u);
  EXPECT_EQ(ReadAll(file->get()), std::string(10000, 'x'));
}

TEST_F(SplitFsTest, FineGrainedSmallWritesAreFastLargeWritesStream) {
  auto fs = MakeFs();
  SplitOpenOptions opts;
  opts.fine_grained = true;
  opts.small_write_threshold = 4096;
  auto file = fs->Open("/mixed", opts);
  ASSERT_TRUE(file.ok());

  SimTime t0 = sim_.Now();
  ASSERT_TRUE((*file)->WriteAt(0, std::string(128, 's')).ok());
  SimTime small_lat = sim_.Now() - t0;
  EXPECT_LT(small_lat, Micros(20));  // NCL path

  t0 = sim_.Now();
  ASSERT_TRUE((*file)->WriteAt(1 << 20, std::string(1 << 20, 'L')).ok());
  SimTime large_lat = sim_.Now() - t0;
  EXPECT_GT(large_lat, Millis(1));  // dfs path
}

}  // namespace
}  // namespace splitft
