// Tests for erasure-coded NCL regions (DESIGN.md §16): the GF(256) striping
// kernel, geometry validation at client construction, the k+m append /
// late-binding watermark / recovery protocol end to end, degraded operation
// and background repair, the append-only restriction, the ap-map geometry
// fence, shard-aligned slab carving, the EC model-checker mode (including
// the bug_ec_ack_below_k mutant), and a short EC chaos campaign.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/chaos/campaign.h"
#include "src/common/rng.h"
#include "src/controller/controller.h"
#include "src/modelcheck/model.h"
#include "src/ncl/ec.h"
#include "src/ncl/ncl_client.h"
#include "src/ncl/peer.h"
#include "src/ncl/peer_directory.h"
#include "src/ncl/region_format.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/rdma/fabric.h"
#include "src/sim/params.h"
#include "src/sim/simulation.h"

namespace splitft {
namespace {

// ----------------------------------------------------------- EC kernel --

TEST(EcKernelTest, GfMulFieldProperties) {
  // Spot-check field structure: identity, commutativity, distributivity.
  for (int a = 1; a < 256; a += 17) {
    EXPECT_EQ(GfMul(static_cast<uint8_t>(a), 1), a);
    for (int b = 1; b < 256; b += 23) {
      EXPECT_EQ(GfMul(static_cast<uint8_t>(a), static_cast<uint8_t>(b)),
                GfMul(static_cast<uint8_t>(b), static_cast<uint8_t>(a)));
    }
  }
  EXPECT_EQ(GfMul(0, 77), 0);
  EXPECT_EQ(GfMul(2, 0x80), 0x1d);  // generator wraps through 0x11d
}

TEST(EcKernelTest, GeometryValidation) {
  EXPECT_TRUE(ValidateEcGeometry({2, 2, 64}).ok());
  EXPECT_TRUE(ValidateEcGeometry({4, 1, 256}).ok());
  EXPECT_EQ(ValidateEcGeometry({1, 2, 64}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ValidateEcGeometry({2, 0, 64}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ValidateEcGeometry({2, 3, 64}).code(),
            StatusCode::kInvalidArgument);  // RS-lite parity caps m at 2
  EXPECT_EQ(ValidateEcGeometry({2, 2, 0}).code(),
            StatusCode::kInvalidArgument);
}

TEST(EcKernelTest, ShardCapacityRoundsByGroup) {
  EcGeometry geo{2, 2, 64};
  EXPECT_EQ(geo.group_bytes(), 128u);
  EXPECT_EQ(geo.ShardCapacity(0), 0u);
  EXPECT_EQ(geo.ShardCapacity(1), 64u);
  EXPECT_EQ(geo.ShardCapacity(128), 64u);
  EXPECT_EQ(geo.ShardCapacity(129), 128u);
}

TEST(EcKernelTest, DataShardRangeMapsUnitsToLanes) {
  EcGeometry geo{2, 2, 64};
  // Logical [0, 128) = units 0,1 -> one unit on each lane.
  EcShardRange r0 = DataShardRange(geo, 0, 0, 128);
  EXPECT_EQ(r0.begin, 0u);
  EXPECT_EQ(r0.end, 64u);
  EcShardRange r1 = DataShardRange(geo, 1, 0, 128);
  EXPECT_EQ(r1.begin, 0u);
  EXPECT_EQ(r1.end, 64u);
  // Logical [64, 128) lives entirely on lane 1.
  EXPECT_TRUE(DataShardRange(geo, 0, 64, 64).empty());
  EcShardRange r2 = DataShardRange(geo, 1, 64, 64);
  EXPECT_EQ(r2.begin, 0u);
  EXPECT_EQ(r2.end, 64u);
  // A sub-unit append lands only on its lane, partial chunk.
  EcShardRange r3 = DataShardRange(geo, 0, 10, 20);
  EXPECT_EQ(r3.begin, 10u);
  EXPECT_EQ(r3.end, 30u);
  // Parity covers the whole touched groups.
  EcShardRange rp = ParityShardRange(geo, 10, 20);
  EXPECT_EQ(rp.begin, 0u);
  EXPECT_EQ(rp.end, 64u);
  EcShardRange rp2 = ParityShardRange(geo, 120, 20);
  EXPECT_EQ(rp2.begin, 0u);
  EXPECT_EQ(rp2.end, 128u);
}

std::string RandomBytes(uint64_t n, uint64_t seed) {
  Rng rng(seed);
  std::string out(n, '\0');
  for (uint64_t i = 0; i < n; ++i) {
    out[i] = static_cast<char>(rng.UniformRange(0, 255));
  }
  return out;
}

// Encode all k+m shards of `logical`, drop the shards in `dropped`, and
// reconstruct; the roundtrip must be exact for any m dropped shards.
void RoundTrip(const EcGeometry& geo, const std::string& logical,
               const std::vector<uint32_t>& dropped) {
  uint64_t shard_len = geo.ShardCapacity(logical.size());
  std::vector<std::string> shards(geo.shards());
  EcShardRange full{0, shard_len};
  for (uint32_t j = 0; j < geo.k; ++j) {
    ExtractDataShard(geo, j, logical, full, &shards[j]);
  }
  for (uint32_t p = 0; p < geo.m; ++p) {
    EncodeParityShard(geo, p, logical, full, &shards[geo.k + p]);
  }
  std::vector<EcShardView> views;
  for (uint32_t s = 0; s < geo.shards(); ++s) {
    bool is_dropped = false;
    for (uint32_t d : dropped) {
      is_dropped |= d == s;
    }
    if (!is_dropped) {
      views.push_back(EcShardView{s, shards[s]});
    }
  }
  std::string rebuilt;
  ASSERT_TRUE(EcReconstruct(geo, views, logical.size(), &rebuilt).ok());
  EXPECT_EQ(rebuilt, logical) << "k=" << geo.k << " m=" << geo.m;
}

TEST(EcKernelTest, ReconstructFromAnyKShards) {
  for (uint64_t len : {1ull, 63ull, 64ull, 100ull, 128ull, 1000ull, 4096ull}) {
    std::string logical = RandomBytes(len, 0xEC0DE + len);
    // k=2, m=2: every 2-of-4 subset, i.e. every pair dropped.
    EcGeometry g22{2, 2, 64};
    for (uint32_t a = 0; a < 4; ++a) {
      for (uint32_t b = a + 1; b < 4; ++b) {
        RoundTrip(g22, logical, {a, b});
      }
    }
    // k=4, m=2: drop each pair.
    EcGeometry g42{4, 2, 64};
    for (uint32_t a = 0; a < 6; ++a) {
      for (uint32_t b = a + 1; b < 6; ++b) {
        RoundTrip(g42, logical, {a, b});
      }
    }
    // k=2, m=1: drop each single shard.
    EcGeometry g21{2, 1, 128};
    for (uint32_t a = 0; a < 3; ++a) {
      RoundTrip(g21, logical, {a});
    }
  }
}

TEST(EcKernelTest, ReconstructRejectsBadInputs) {
  EcGeometry geo{2, 2, 64};
  std::string logical = RandomBytes(256, 7);
  std::string s0;
  std::string s1;
  EcShardRange full{0, geo.ShardCapacity(logical.size())};
  ExtractDataShard(geo, 0, logical, full, &s0);
  ExtractDataShard(geo, 1, logical, full, &s1);
  std::string out;
  // Fewer than k shards.
  EXPECT_EQ(EcReconstruct(geo, {EcShardView{0, s0}}, logical.size(), &out)
                .code(),
            StatusCode::kInvalidArgument);
  // Duplicate shard index.
  EXPECT_EQ(EcReconstruct(geo, {EcShardView{0, s0}, EcShardView{0, s0}},
                          logical.size(), &out)
                .code(),
            StatusCode::kInvalidArgument);
  // Out-of-range shard index.
  EXPECT_EQ(EcReconstruct(geo, {EcShardView{0, s0}, EcShardView{9, s1}},
                          logical.size(), &out)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(EcKernelTest, ShardHeaderRoundTrip) {
  NclShardHeader h;
  h.seq = 42;
  h.length = 9001;
  h.k = 4;
  h.m = 2;
  h.shard_index = 5;
  h.stripe_unit = 256;
  std::string raw = h.Encode();
  ASSERT_EQ(raw.size(), kNclEcHeaderBytes);
  NclShardHeader d = NclShardHeader::Decode(raw);
  EXPECT_EQ(d.seq, 42u);
  EXPECT_EQ(d.length, 9001u);
  EXPECT_EQ(d.k, 4u);
  EXPECT_EQ(d.m, 2u);
  EXPECT_EQ(d.shard_index, 5u);
  EXPECT_EQ(d.stripe_unit, 256u);
}

// -------------------------------------------------- cluster fixture --

constexpr uint64_t kLend = 512ull << 20;

class EcClusterTest : public ::testing::Test {
 protected:
  EcClusterTest() : fabric_(&sim_, &params_), controller_(&sim_, &params_) {
    app_node_ = fabric_.AddNode("app-server");
  }

  void StartPeers(int n, LogPeerOptions options = {}, uint64_t lend = kLend) {
    for (int i = 0; i < n; ++i) {
      auto peer = std::make_unique<LogPeer>("p" + std::to_string(i), &fabric_,
                                            &controller_, lend,
                                            ObsContext{&metrics_, nullptr},
                                            options);
      EXPECT_TRUE(peer->Start().ok());
      directory_.Register(peer.get());
      peers_.push_back(std::move(peer));
    }
  }

  NclConfig EcConfig(uint32_t k = 2, uint32_t m = 2) {
    NclConfig config;
    config.app_id = "ec-app";
    config.default_capacity = 1 << 20;
    config.ec_enabled = true;
    config.ec = EcGeometry{k, m, 64};
    config.fault_budget = static_cast<int>(m);
    return config;
  }

  std::unique_ptr<NclClient> MakeClient(NclConfig config) {
    return std::make_unique<NclClient>(config, &fabric_, &controller_,
                                       &directory_, app_node_,
                                       ObsContext{&metrics_, nullptr});
  }

  std::string Contents(NclFile* file) {
    auto data = file->Read(0, file->size());
    EXPECT_TRUE(data.ok());
    return data.ok() ? *data : std::string();
  }

  int64_t GaugeValue(const std::string& name) {
    auto it = metrics_.gauges().find(name);
    return it == metrics_.gauges().end() ? 0 : it->second->value();
  }

  Simulation sim_;
  SimParams params_;
  MetricsRegistry metrics_;
  Fabric fabric_;
  Controller controller_;
  PeerDirectory directory_;
  std::vector<std::unique_ptr<LogPeer>> peers_;
  NodeId app_node_;
};

// -------------------------------------------------- config validation --

TEST_F(EcClusterTest, RejectsParityBelowFaultBudget) {
  StartPeers(4);
  NclConfig config = EcConfig(2, 1);
  config.fault_budget = 2;  // m=1 cannot cover f=2
  auto client = MakeClient(config);
  EXPECT_EQ(client->status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(client->status().message().find("need m >= f"),
            std::string::npos);
  auto file = client->Create("wal");
  EXPECT_EQ(file.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EcClusterTest, RejectsGeometryWiderThanPeerPool) {
  StartPeers(3);  // k+m = 4 > 3 registered peers
  auto client = MakeClient(EcConfig(2, 2));
  EXPECT_EQ(client->status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(client->status().message().find("exceeds the reachable log"),
            std::string::npos);
  EXPECT_EQ(client->Create("wal").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(EcClusterTest, RejectsMalformedGeometry) {
  StartPeers(5);
  NclConfig config = EcConfig(2, 2);
  config.ec.stripe_unit = 0;
  auto client = MakeClient(config);
  EXPECT_EQ(client->status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EcClusterTest, ValidGeometryConstructsCleanly) {
  StartPeers(5);
  auto client = MakeClient(EcConfig(2, 2));
  EXPECT_TRUE(client->status().ok());
}

// ------------------------------------------------------- protocol e2e --

TEST_F(EcClusterTest, AppendRecoverRoundTrip) {
  StartPeers(5);
  std::string oracle;
  {
    auto client = MakeClient(EcConfig(2, 2));
    auto file = client->Create("wal");
    ASSERT_TRUE(file.ok());
    Rng rng(0xEC17);
    for (int i = 0; i < 60; ++i) {
      std::string payload =
          RandomBytes(rng.UniformRange(1, 700), 0xA0 + i);
      oracle += payload;
      ASSERT_TRUE((*file)->Append(payload).ok()) << i;
    }
    EXPECT_EQ(Contents(file->get()), oracle);
    // App "crashes": handle dropped without Delete.
  }
  auto fresh = MakeClient(EcConfig(2, 2));
  auto recovered = fresh->Recover("wal");
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->size(), oracle.size());
  EXPECT_EQ(Contents(recovered->get()), oracle);
  // Recovered file accepts writes again.
  EXPECT_TRUE((*recovered)->Append("post-recovery").ok());
}

TEST_F(EcClusterTest, PeerMemoryIsShardSizedNotReplicaSized) {
  StartPeers(4);
  NclConfig config = EcConfig(2, 2);
  config.default_capacity = 1 << 20;
  auto client = MakeClient(config);
  auto file = client->Create("wal");
  ASSERT_TRUE(file.ok());
  // Every member holds a shard region: half the content space plus the
  // 32-byte header — not a full replica. 4 shard peers at 1/2 each = 2x
  // total for f=2, where replication would pin 3x.
  uint64_t shard_region =
      kNclEcHeaderBytes + config.ec.ShardCapacity(config.default_capacity);
  EXPECT_LT(shard_region, config.default_capacity * 3 / 5);
  for (const auto& peer : peers_) {
    EXPECT_EQ(peer->available_bytes(), kLend - shard_region) << peer->name();
  }
}

TEST_F(EcClusterTest, EcFilesAreAppendOnly) {
  StartPeers(5);
  auto client = MakeClient(EcConfig(2, 2));
  auto file = client->Create("wal");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(std::string(300, 'x')).ok());
  // Positional overwrite of committed bytes cannot be reconstructed
  // column-consistently from mixed-seq shard streams.
  Status st = (*file)->Write(100, "overwrite");
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("append-only"), std::string::npos);
  // Appending at the tail and truncating (header-only) stay legal.
  EXPECT_TRUE((*file)->Append("tail").ok());
  EXPECT_TRUE((*file)->Truncate().ok());
  EXPECT_TRUE((*file)->Append("fresh start").ok());
  EXPECT_EQ(Contents(file->get()), "fresh start");
}

TEST_F(EcClusterTest, DegradedByParityWidthKeepsAcking) {
  // m peers die mid-stream: the late-binding watermark needs only the
  // first k shard completions, so appends keep succeeding; spares then
  // absorb the repairs and recovery sees everything.
  StartPeers(7);
  std::string oracle;
  {
    auto client = MakeClient(EcConfig(2, 2));
    auto file = client->Create("wal");
    ASSERT_TRUE(file.ok());
    for (int i = 0; i < 20; ++i) {
      std::string payload(200, static_cast<char>('a' + i));
      oracle += payload;
      ASSERT_TRUE((*file)->Append(payload).ok()) << i;
    }
    // Kill m = 2 of the current members.
    std::vector<std::string> members = (*file)->peer_names();
    ASSERT_EQ(members.size(), 4u);
    directory_.Lookup(members[1])->Crash();
    directory_.Lookup(members[3])->Crash();
    for (int i = 20; i < 40; ++i) {
      std::string payload(200, static_cast<char>('a' + (i % 26)));
      oracle += payload;
      ASSERT_TRUE((*file)->Append(payload).ok()) << i;
    }
    ASSERT_TRUE((*file)->Drain().ok());
    // The dead shards were rebuilt on spares (background repair).
    EXPECT_GE(metrics_.CounterValue("ncl.ec.repairs"), 2u);
    EXPECT_GE(client->peers_replaced(), 2);
  }
  auto fresh = MakeClient(EcConfig(2, 2));
  auto recovered = fresh->Recover("wal");
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(Contents(recovered->get()), oracle);
}

TEST_F(EcClusterTest, FewerThanKSurvivorsBlocksWithoutAckedLoss) {
  // k-1 shard holders survive and no spare exists: appends must fail
  // (correct unavailability), and after the peers heal every acknowledged
  // byte is still recoverable — nothing acked is ever lost.
  StartPeers(4);  // exactly k+m members, no spares
  std::string acked;
  {
    auto client = MakeClient(EcConfig(2, 2));
    auto file = client->Create("wal");
    ASSERT_TRUE(file.ok());
    for (int i = 0; i < 10; ++i) {
      std::string payload(128, static_cast<char>('A' + i));
      acked += payload;
      ASSERT_TRUE((*file)->Append(payload).ok()) << i;
    }
    ASSERT_TRUE((*file)->Drain().ok());
    // 3 of 4 members die: one survivor < k = 2.
    std::vector<std::string> members = (*file)->peer_names();
    directory_.Lookup(members[0])->Crash();
    directory_.Lookup(members[1])->Crash();
    directory_.Lookup(members[2])->Crash();
    Status st = (*file)->Append("must not ack");
    EXPECT_EQ(st.code(), StatusCode::kUnavailable);
    // Heal: the two peers restart with empty memory; with k = 2 survivors
    // of the original write set the acked prefix is reconstructable again
    // once a replacement catch-up runs — here we restart one of the dead
    // *members* region-less, so recovery must reconstruct from the two
    // still-holding members only.
    ASSERT_TRUE(directory_.Lookup(members[0])->Restart().ok());
    ASSERT_TRUE(directory_.Lookup(members[1])->Restart().ok());
  }
  // Only members[3] and the restarted-but-empty peers remain: the two
  // region-holding members are members[3] and... members[2] stayed dead,
  // so only one shard stream holds data. Recovery must refuse rather than
  // fabricate bytes.
  auto fresh = MakeClient(EcConfig(2, 2));
  auto recovered = fresh->Recover("wal");
  EXPECT_EQ(recovered.status().code(), StatusCode::kUnavailable);
  // Heal the last member too; now k holders never existed again (regions
  // were lost), so unavailability persists — the protocol correctly never
  // invents acked bytes it cannot prove.
  // Now rerun the scenario but heal *before* the region is lost: that path
  // is covered by DegradedByParityWidthKeepsAcking above.
}

TEST_F(EcClusterTest, DegradedStripesGaugeStaysBoundedAndSnapsBack) {
  StartPeers(5);
  NclConfig config = EcConfig(2, 2);
  auto client = MakeClient(config);
  auto file = client->Create("wal");
  ASSERT_TRUE(file.ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE((*file)->Append(std::string(100, 'z')).ok());
  }
  ASSERT_TRUE((*file)->Drain().ok());
  // Drain returns at the k-th ack of the tail append; the trailing parity
  // headers may still sit in their CQs, so the quiescent lag is bounded by
  // the in-flight window — that slack is late binding, not degradation.
  EXPECT_LE(GaugeValue("ncl.ec.degraded_stripes"), config.inflight_window);
  // Kill one member; repair re-encodes its shard onto the spare and the
  // gauge snaps back under the window bound instead of growing without
  // limit.
  directory_.Lookup((*file)->peer_names()[2])->Crash();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*file)->Append(std::string(100, 'y')).ok());
  }
  ASSERT_TRUE((*file)->Drain().ok());
  EXPECT_GE(metrics_.CounterValue("ncl.ec.repairs"), 1u);
  EXPECT_LE(GaugeValue("ncl.ec.degraded_stripes"), config.inflight_window);
}

// --------------------------------------------------- ap-map geometry --

TEST_F(EcClusterTest, ApMapCarriesGeometryUnderEpochFence) {
  StartPeers(5);
  auto client = MakeClient(EcConfig(2, 2));
  auto file = client->Create("wal");
  ASSERT_TRUE(file.ok());
  auto entry = controller_.GetApMap("ec-app", "wal");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->ec_k, 2u);
  EXPECT_EQ(entry->ec_m, 2u);
  EXPECT_EQ(entry->ec_stripe_unit, 64u);
  ASSERT_EQ(entry->peers.size(), 4u);

  // Changing the geometry without an epoch bump is fenced exactly like a
  // membership change.
  ApMapEntry mutated = *entry;
  mutated.ec_k = 3;
  // deeplint: allow(epoch-fence) exercising the geometry fence
  EXPECT_EQ(controller_.SetApMap("ec-app", "wal", mutated).code(),
            StatusCode::kFailedPrecondition);
  // Identical same-epoch rewrites stay idempotent.
  // deeplint: allow(epoch-fence) idempotent-rewrite path under test
  EXPECT_TRUE(controller_.SetApMap("ec-app", "wal", *entry).ok());
}

TEST_F(EcClusterTest, RecoveryFencesGeometryMismatch) {
  StartPeers(5);
  {
    auto client = MakeClient(EcConfig(2, 2));
    ASSERT_TRUE(client->Create("wal").ok());
  }
  // A replication-mode client must not trust shard regions...
  NclConfig plain;
  plain.app_id = "ec-app";
  plain.default_capacity = 1 << 20;
  auto plain_client = MakeClient(plain);
  EXPECT_EQ(plain_client->Recover("wal").status().code(),
            StatusCode::kFailedPrecondition);
  // ...nor an EC client with a different geometry.
  auto wrong = MakeClient(EcConfig(2, 1));
  EXPECT_EQ(wrong->Recover("wal").status().code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------- shard-aligned carving --

TEST_F(EcClusterTest, CarveAlignmentPacksShardRegions) {
  EcGeometry geo{2, 2, 64};
  uint64_t shard_region = kNclEcHeaderBytes + geo.ShardCapacity(1 << 20);
  LogPeerOptions options;
  options.carve_align = shard_region;
  StartPeers(4, options);
  NclConfig config = EcConfig(2, 2);
  auto client = MakeClient(config);
  ASSERT_TRUE(client->Create("wal-a").ok());
  ASSERT_TRUE(client->Create("wal-b").ok());
  for (const auto& peer : peers_) {
    // Two shard carves, both exactly one aligned extent each.
    EXPECT_EQ(peer->slab_used_bytes(), 2 * shard_region) << peer->name();
  }
  // Churn: delete one file and re-create; the freed extent is reused
  // without growing the slab.
  uint64_t slab_before = peers_[0]->slab_bytes();
  {
    auto doomed = client->Recover("wal-a");
    ASSERT_TRUE(doomed.ok());
    ASSERT_TRUE((*doomed)->Delete().ok());
  }
  ASSERT_TRUE(client->Create("wal-c").ok());
  EXPECT_EQ(peers_[0]->slab_bytes(), slab_before);
}

// ------------------------------------------------------- model check --

TEST(EcModelCheckTest, CorrectEcProtocolHoldsWithoutCrashes) {
  // The pure late-binding theorem: acked-at-k with recovery from the top-k
  // claims never loses an externalized write, even with no laggard
  // delivery at all (drain off) — pigeonhole over k+m shard streams.
  McConfig config;
  config.ec_k = 2;
  config.ec_m = 2;
  config.max_writes = 3;
  config.max_peer_crashes = 0;
  config.max_app_crashes = 2;
  config.ec_drain_on_crash = false;
  McResult result = CheckNcl(config);
  EXPECT_FALSE(result.violation_found) << result.violation;
  EXPECT_TRUE(result.exhausted);
  EXPECT_GT(result.states_explored, 100u);
}

TEST(EcModelCheckTest, AckBelowKMutantLosesExternalizedWrite) {
  // The bug_ec_ack_below_k mutant acknowledges at k-1 shard headers: one
  // short of reconstructable. Same state space as the theorem above, and
  // the checker must find the externalized-write loss.
  McConfig config;
  config.ec_k = 2;
  config.ec_m = 2;
  config.max_writes = 3;
  config.max_peer_crashes = 0;
  config.max_app_crashes = 2;
  config.ec_drain_on_crash = false;
  config.bug_ec_ack_below_k = true;
  McResult result = CheckNcl(config);
  ASSERT_TRUE(result.violation_found);
  EXPECT_NE(result.violation.find("externalized"), std::string::npos)
      << result.violation;
}

TEST(EcModelCheckTest, EcSurvivesPeerCrashesWithLaggardDelivery) {
  // With one-sided WRs outliving the initiator (drain on crash — the real
  // fabric's behaviour), the k+m geometry tolerates peer crashes too.
  McConfig config;
  config.ec_k = 2;
  config.ec_m = 2;
  config.max_writes = 2;
  config.max_peer_crashes = 1;
  config.max_app_crashes = 2;
  config.spare_peers = 1;
  config.ec_drain_on_crash = true;
  McResult result = CheckNcl(config);
  EXPECT_FALSE(result.violation_found) << result.violation;
  EXPECT_TRUE(result.exhausted);
}

TEST(EcModelCheckTest, SeqBeforeDataBugStillCaughtUnderEc) {
  // The §4.6 header-before-data bug composes with EC: a shard header
  // landing before its shard bytes leaves holes in the reconstruction.
  // Drain must be off here — laggard delivery at app-crash time would
  // deliver the late data WR too and mask exactly the hole this bug opens.
  McConfig config;
  config.ec_k = 2;
  config.ec_m = 2;
  config.max_writes = 2;
  config.max_peer_crashes = 0;
  config.max_app_crashes = 2;
  config.ec_drain_on_crash = false;
  config.bug_seq_before_data = true;
  McResult result = CheckNcl(config);
  ASSERT_TRUE(result.violation_found);
  EXPECT_NE(result.violation.find("holes"), std::string::npos)
      << result.violation;
}

// ------------------------------------------------------ chaos (short) --

TEST(EcChaosTest, ShortEcCampaignHoldsInvariants) {
  CampaignOptions options;
  options.seed_from_env = false;
  options.runs = 25;
  options.with_ec = true;
  options.num_peers = 7;  // k+m members + spares for repairs
  CampaignResult result = RunChaosCampaign(options);
  for (const CampaignViolation& v : result.violations) {
    ADD_FAILURE() << "invariant '" << v.invariant << "' violated by seed "
                  << v.seed << ": " << v.detail << "\nschedule:\n"
                  << v.schedule;
  }
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.stats.runs, options.runs);
  EXPECT_GT(result.stats.appends_acked, 0);
  EXPECT_GT(result.stats.faults_injected, 0);
}

}  // namespace
}  // namespace splitft
