// Cross-cutting integration tests: several ncl files per application,
// several applications sharing the peer pool, peer-memory accounting
// across app lifecycles, and periodic leak GC driven by the virtual clock.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/harness/testbed.h"

namespace splitft {
namespace {

TEST(IntegrationTest, MultipleNclFilesPerApplication) {
  Testbed testbed;
  auto server = testbed.MakeServer("multi-file");
  SplitOpenOptions opts;
  opts.oncl = true;
  opts.ncl_capacity = 64 << 10;

  // Several live logs at once (RocksDB can hold multiple column-family
  // WALs; Redis an AOF per shard).
  std::vector<std::unique_ptr<SplitFile>> files;
  for (int i = 0; i < 4; ++i) {
    auto file = server->fs->Open("/logs/wal-" + std::to_string(i), opts);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("content-" + std::to_string(i)).ok());
    files.push_back(std::move(*file));
  }
  EXPECT_EQ(server->fs->ncl()->ListFiles().size(), 4u);

  // Crash; recover each file independently.
  files.clear();
  testbed.CrashServer(server.get());
  testbed.sim()->RunUntilIdle();
  auto server2 = testbed.MakeServer("multi-file");
  for (int i = 0; i < 4; ++i) {
    auto file = server2->fs->Open("/logs/wal-" + std::to_string(i), opts);
    ASSERT_TRUE(file.ok()) << i;
    auto data = (*file)->Read(0, 100);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(*data, "content-" + std::to_string(i));
  }
}

TEST(IntegrationTest, TwoApplicationsShareThePeerPool) {
  Testbed testbed;
  auto kv_server = testbed.MakeServer("tenant-kv");
  auto redis_server =
      testbed.MakeServer("tenant-redis");

  KvStoreOptions kv_options;
  kv_options.mode = DurabilityMode::kSplitFt;
  auto kv = testbed.StartKvStore(kv_server.get(), kv_options);
  ASSERT_TRUE(kv.ok());
  RedisOptions redis_options;
  redis_options.mode = DurabilityMode::kSplitFt;
  auto redis = testbed.StartRedis(redis_server.get(), redis_options);
  ASSERT_TRUE(redis.ok());

  ASSERT_TRUE((*kv)->Put("kv-key", "kv-value").ok());
  ASSERT_TRUE((*redis)->Put("redis-key", "redis-value").ok());

  // Both tenants' regions coexist on the shared peers.
  size_t total_regions = 0;
  for (int i = 0; i < testbed.num_peers(); ++i) {
    total_regions += testbed.peer(i)->active_regions();
  }
  EXPECT_GE(total_regions, 6u);  // >= 2 files x 3 peers

  // Crash one tenant; the other is unaffected.
  testbed.CrashServer(kv_server.get());
  EXPECT_EQ(*(*redis)->Get("redis-key"), "redis-value");
  ASSERT_TRUE((*redis)->Put("redis-key2", "v").ok());

  // The crashed tenant recovers with its own data only.
  testbed.sim()->RunUntilIdle();
  auto kv_server2 = testbed.MakeServer("tenant-kv");
  auto kv2 = testbed.StartKvStore(kv_server2.get(), kv_options);
  ASSERT_TRUE(kv2.ok());
  EXPECT_EQ(*(*kv2)->Get("kv-key"), "kv-value");
  EXPECT_FALSE((*kv2)->Get("redis-key").ok());
}

TEST(IntegrationTest, PeerMemoryFullyReclaimedAfterAppDeletesEverything) {
  Testbed testbed;
  uint64_t baseline[8];
  for (int i = 0; i < testbed.num_peers(); ++i) {
    baseline[i] = testbed.peer(i)->available_bytes();
  }
  auto server = testbed.MakeServer("reclaim");
  SplitOpenOptions opts;
  opts.oncl = true;
  opts.ncl_capacity = 1 << 20;
  for (int round = 0; round < 3; ++round) {
    auto file = server->fs->Open("/wal", opts);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("payload").ok());
    file->reset();
    ASSERT_TRUE(server->fs->Unlink("/wal").ok());
  }
  for (int i = 0; i < testbed.num_peers(); ++i) {
    EXPECT_EQ(testbed.peer(i)->available_bytes(), baseline[i])
        << testbed.peer(i)->name();
    EXPECT_EQ(testbed.peer(i)->active_regions(), 0u);
  }
}

TEST(IntegrationTest, PeriodicLeakGcReclaimsOrphanedRegions) {
  Testbed testbed;
  // Orphan an allocation: epoch bumped, region allocated, app never writes
  // the ap-map (simulated initialization crash), then the app moves on.
  auto epoch = testbed.controller()->BumpAppEpoch("leaky-app");
  ASSERT_TRUE(epoch.ok());
  ASSERT_TRUE(
      testbed.peer(0)->Allocate("leaky-app", "/orphan", 1 << 20, *epoch).ok());
  ASSERT_TRUE(testbed.controller()->BumpAppEpoch("leaky-app").ok());

  // Drive GC from the virtual clock like a real peer daemon would.
  int freed = 0;
  for (int tick = 0; tick < 5 && freed == 0; ++tick) {
    testbed.sim()->RunUntil(testbed.sim()->Now() + Seconds(30));
    freed += testbed.peer(0)->RunLeakGc();
  }
  EXPECT_EQ(freed, 1);
  EXPECT_EQ(testbed.peer(0)->active_regions(), 0u);
}

TEST(IntegrationTest, LeaseBlocksSplitBrainAcrossIncarnations) {
  Testbed testbed;
  auto server1 = testbed.MakeServer("sb-app");
  // MakeServer acquired the lease; a concurrent second instance must not
  // be able to take it while the first is alive.
  NclConfig config;
  config.app_id = "sb-app";
  auto dfs2 = std::make_unique<DfsClient>(testbed.dfs_cluster(), "sb-app-2");
  SplitFs second(config, dfs2.get(), testbed.fabric(), testbed.controller(),
                 testbed.directory(), 0);
  EXPECT_EQ(second.Start().code(), StatusCode::kAborted);
  // After the first crashes, the second instance may proceed.
  testbed.CrashServer(server1.get());
  EXPECT_TRUE(second.Start().ok());
}

TEST(IntegrationTest, FaultBudgetTwoEndToEnd) {
  // A full application stack at f=2 (five peers per file) surviving two
  // simultaneous peer crashes plus an app crash.
  TestbedOptions options;
  options.num_peers = 7;
  options.fault_budget = 2;
  Testbed testbed(options);
  KvStoreOptions kv_options;
  kv_options.mode = DurabilityMode::kSplitFt;
  {
    auto server = testbed.MakeServer("f2-app");
    auto kv = testbed.StartKvStore(server.get(), kv_options);
    ASSERT_TRUE(kv.ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE((*kv)->Put("k" + std::to_string(i), "v").ok());
    }
    testbed.sim()->RunUntilIdle();
    testbed.peer(0)->Crash();
    testbed.peer(1)->Crash();
    testbed.CrashServer(server.get());
  }
  testbed.sim()->RunUntilIdle();
  auto server = testbed.MakeServer("f2-app");
  auto kv = testbed.StartKvStore(server.get(), kv_options);
  ASSERT_TRUE(kv.ok());
  for (int i = 0; i < 100; i += 9) {
    EXPECT_TRUE((*kv)->Get("k" + std::to_string(i)).ok()) << i;
  }
}

}  // namespace
}  // namespace splitft
