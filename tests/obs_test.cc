// Tests for the observability layer: MetricsRegistry, the sim-time span
// Tracer (self-time accounting, ring buffer, disabled-mode no-ops), and the
// end-to-end guarantee the benches rely on — NCL recovery phase spans sum
// exactly to the observed end-to-end recovery latency.
//
// simlint: allow-file(metric-name) these tests exercise the registry and
// tracer APIs directly with deliberately minimal synthetic names ("x",
// "root"); the naming convention applies to instrumentation, not to the
// instruments' own unit tests.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/controller/controller.h"
#include "src/harness/testbed.h"
#include "src/ncl/ncl_client.h"
#include "src/ncl/peer.h"
#include "src/ncl/peer_directory.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"
#include "src/rdma/fabric.h"
#include "src/sim/params.h"
#include "src/sim/simulation.h"

namespace splitft {
namespace {

// ------------------------------------------------------- MetricsRegistry --

TEST(MetricsRegistryTest, CounterCreateOnFirstUseWithStablePointers) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.FindCounter("ncl.record.count"), nullptr);
  Counter* c = registry.counter("ncl.record.count");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(registry.counter("ncl.record.count"), c);
  c->Add();
  c->Add(9);
  EXPECT_EQ(registry.CounterValue("ncl.record.count"), 10u);
  EXPECT_EQ(registry.CounterValue("never.registered"), 0u);
  EXPECT_EQ(registry.FindCounter("ncl.record.count"), c);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge* g = registry.gauge("ncl.client.alive_peers");
  g->Set(5);
  g->Add(-2);
  EXPECT_EQ(g->value(), 3);
  EXPECT_EQ(registry.FindGauge("ncl.client.alive_peers"), g);
}

TEST(MetricsRegistryTest, NullSafeHelpersTolerateNullInstruments) {
  ObsAdd(nullptr);
  ObsAdd(nullptr, 7);
  ObsSet(nullptr, 3);
  ObsRecord(nullptr, 100);
  ObsContext obs;  // both pointers null
  EXPECT_EQ(obs.counter("x"), nullptr);
  EXPECT_EQ(obs.gauge("x"), nullptr);
  EXPECT_EQ(obs.histogram("x"), nullptr);
}

TEST(MetricsRegistryTest, ToJsonCoversAllInstrumentKinds) {
  MetricsRegistry registry;
  registry.counter("fabric.wr.writes_posted")->Add(3);
  registry.gauge("dfs.client.dirty_bytes")->Set(-12);
  Histogram* h = registry.histogram("ncl.record.latency_ns");
  for (int i = 1; i <= 100; ++i) {
    h->Add(i * 1000);
  }
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"fabric.wr.writes_posted\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"dfs.client.dirty_bytes\": -12"), std::string::npos);
  EXPECT_NE(json.find("\"ncl.record.latency_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 100"), std::string::npos);
}

TEST(MetricsRegistryTest, StatusDiscardsCountIntoTheRegistry) {
  MetricsRegistry registry;
  {
    StatusDiscardMetrics mirror(&registry);
    DiscardStatus(OkStatus(), "obs test ok");
    DiscardStatus(TimedOutError("slow"), "obs test bad");
    EXPECT_EQ(registry.CounterValue("common.status.discards"), 2u);
    EXPECT_EQ(registry.CounterValue("common.status.discards_nonok"), 1u);
  }
  // Sink uninstalled with the mirror: later discards don't touch it.
  DiscardStatus(TimedOutError("slow"), "after mirror");
  EXPECT_EQ(registry.CounterValue("common.status.discards"), 2u);
}

// ----------------------------------------------------------------- Tracer --

TEST(TracerTest, SelfTimeSumsExactlyToRootDuration) {
  Simulation sim;
  Tracer tracer(&sim, /*enabled=*/true);
  tracer.Begin("root");
  sim.Advance(10);
  tracer.Begin("child");
  sim.Advance(30);
  tracer.End();
  sim.Advance(5);
  tracer.Begin("child");
  sim.Advance(20);
  tracer.End();
  tracer.End();

  const auto& agg = tracer.aggregates();
  EXPECT_EQ(agg.at("root").total, 65);
  EXPECT_EQ(agg.at("root").self, 15);
  EXPECT_EQ(agg.at("child").count, 2u);
  EXPECT_EQ(agg.at("child").total, 50);
  EXPECT_EQ(agg.at("child").self, 50);
  // The attribution invariant: self summed over all spans == root duration.
  EXPECT_EQ(tracer.AttributedSelfTime(), agg.at("root").total);
  EXPECT_EQ(tracer.open_spans(), 0u);
}

TEST(TracerTest, PrefixSumAndAsyncExclusion) {
  Simulation sim;
  Tracer tracer(&sim, /*enabled=*/true);
  tracer.Begin("ncl.recover");
  tracer.Begin("ncl.recover.get_peers");
  sim.Advance(7);
  tracer.End();
  tracer.Begin("ncl.recover.rdma_read");
  sim.Advance(13);
  tracer.End();
  tracer.End();
  tracer.AddAsyncSpan("fabric.wr.write", 0, 20);

  // The trailing dot excludes the root span itself from the phase sum.
  EXPECT_EQ(tracer.TotalForPrefix("ncl.recover."), 20);
  EXPECT_EQ(tracer.TotalForPrefix("ncl.recover"), 40);
  // Async spans are aggregated but never attributed (they overlap a scoped
  // span's time).
  EXPECT_TRUE(tracer.aggregates().at("fabric.wr.write").async);
  EXPECT_EQ(tracer.TotalForPrefix("fabric."), 0);
  EXPECT_EQ(tracer.AttributedSelfTime(), 20);
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Simulation sim;
  Tracer tracer(&sim, /*enabled=*/false);
  tracer.Begin("root");
  sim.Advance(10);
  tracer.End();
  tracer.AddAsyncSpan("x", 0, 5);
  {
    ObsSpan span(&tracer, "guarded");
    sim.Advance(5);
  }
  EXPECT_TRUE(tracer.aggregates().empty());
  EXPECT_TRUE(tracer.events().empty());
  // Null tracer is equally fine.
  ObsSpan null_span(nullptr, "nothing");
}

TEST(TracerTest, RingBufferKeepsNewestEventsOldestFirst) {
  Simulation sim;
  Tracer tracer(&sim, /*enabled=*/true, /*ring_capacity=*/2);
  for (int i = 0; i < 3; ++i) {
    tracer.Begin("span-" + std::to_string(i));
    sim.Advance(1);
    tracer.End();
  }
  auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "span-1");
  EXPECT_EQ(events[1].name, "span-2");
  EXPECT_LE(events[0].end, events[1].start);
}

TEST(TracerTest, SnapshotDiffScopesAWindow) {
  Simulation sim;
  Tracer tracer(&sim, /*enabled=*/true);
  tracer.Begin("op");
  sim.Advance(10);
  tracer.End();
  auto before = tracer.Snapshot();
  tracer.Begin("op");
  sim.Advance(25);
  tracer.End();
  auto diff = SpanDiff(before, tracer.Snapshot());
  ASSERT_EQ(diff.count("op"), 1u);
  EXPECT_EQ(diff.at("op").count, 1u);
  EXPECT_EQ(diff.at("op").total, 25);
}

// -------------------------------------------- End-to-end span attribution --

class ObsNclTest : public ::testing::Test {
 protected:
  ObsNclTest()
      : tracer_(&sim_, /*enabled=*/true),
        obs_{&registry_, &tracer_},
        fabric_(&sim_, &params_, obs_),
        controller_(&sim_, &params_, obs_) {
    app_node_ = fabric_.AddNode("app-server");
    for (int i = 0; i < 3; ++i) {
      auto peer = std::make_unique<LogPeer>("p" + std::to_string(i), &fabric_,
                                            &controller_, 512ull << 20);
      EXPECT_TRUE(peer->Start().ok());
      directory_.Register(peer.get());
      peers_.push_back(std::move(peer));
    }
  }

  std::unique_ptr<NclClient> MakeClient() {
    NclConfig config;
    config.app_id = "obs-app";
    config.default_capacity = 1 << 20;
    return std::make_unique<NclClient>(config, &fabric_, &controller_,
                                       &directory_, app_node_, obs_);
  }

  Simulation sim_;
  SimParams params_;
  MetricsRegistry registry_;
  Tracer tracer_;
  ObsContext obs_;
  Fabric fabric_;
  Controller controller_;
  PeerDirectory directory_;
  std::vector<std::unique_ptr<LogPeer>> peers_;
  NodeId app_node_;
};

TEST_F(ObsNclTest, RecoveryPhaseSpansSumToEndToEndLatency) {
  {
    auto client = MakeClient();
    auto file = client->Create("/wal/1");
    ASSERT_TRUE(file.ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE((*file)->Append("record-" + std::to_string(i) + ";").ok());
    }
    // Crash: the handle is dropped without Delete.
  }
  sim_.RunUntilIdle();

  auto before = tracer_.Snapshot();
  auto client2 = MakeClient();
  SimTime start = sim_.Now();
  auto recovered = client2->Recover("/wal/1");
  SimTime elapsed = sim_.Now() - start;
  ASSERT_TRUE(recovered.ok());
  ASSERT_GT(elapsed, 0);

  auto window = SpanDiff(before, tracer_.Snapshot());
  // The root recovery span covers the whole call...
  ASSERT_EQ(window.count("ncl.recover"), 1u);
  EXPECT_EQ(window.at("ncl.recover").total, elapsed);
  // ...and the four phase spans partition it exactly: their durations sum
  // to the observed end-to-end recovery latency with nothing unattributed.
  SimTime phase_sum = 0;
  for (const char* phase :
       {"ncl.recover.get_peers", "ncl.recover.connect",
        "ncl.recover.rdma_read", "ncl.recover.sync_peers"}) {
    ASSERT_EQ(window.count(phase), 1u) << phase;
    phase_sum += window.at(phase).total;
  }
  EXPECT_EQ(phase_sum, elapsed);
  EXPECT_EQ(tracer_.TotalForPrefix("ncl.recover."),
            tracer_.aggregates().at("ncl.recover").total);

  // The registry saw the same recovery through the histogram mirror.
  const Histogram* h = registry_.FindHistogram("ncl.recover.latency_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
}

TEST_F(ObsNclTest, RegistryMirrorsRecordAndFabricActivity) {
  auto client = MakeClient();
  auto file = client->Create("/wal/1");
  ASSERT_TRUE(file.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*file)->Append("payload").ok());
  }
  EXPECT_EQ(registry_.CounterValue("ncl.record.count"), 10u);
  EXPECT_EQ(registry_.CounterValue("ncl.record.bytes"), 70u);
  EXPECT_GT(registry_.CounterValue("fabric.wr.writes_posted"), 0u);
  EXPECT_GT(registry_.CounterValue("fabric.wr.write_bytes"), 0u);
  EXPECT_GT(registry_.CounterValue("controller.rpc.count"), 0u);
  // Fabric WR async spans were recorded between post and completion.
  EXPECT_GT(tracer_.aggregates().count("fabric.wr.write"), 0u);
  // No fault-path counters fired on this clean run.
  EXPECT_EQ(registry_.CounterValue("ncl.client.release_failures"), 0u);
}

// --------------------------------------------------- Testbed integration --

TEST(ObsTestbedTest, TestbedWiresOneRegistryThroughEveryLayer) {
  TestbedOptions options;
  options.tracing = true;
  Testbed bed(options);
  auto server = bed.MakeServer("app-1");
  KvStoreOptions kv_options;
  kv_options.mode = DurabilityMode::kSplitFt;
  kv_options.dir = "/app-1";
  // Tiny memtable so the load phase flushes sstables to the dfs and the
  // "dfs.client.*" counters see traffic too.
  kv_options.memtable_bytes = 16 << 10;
  auto kv = bed.StartKvStore(server.get(), kv_options);
  ASSERT_TRUE(kv.ok());
  ASSERT_TRUE(Testbed::LoadRecords(kv->get(), 200).ok());
  server->app = std::move(*kv);

  MetricsRegistry* metrics = bed.metrics();
  EXPECT_GT(metrics->CounterValue("splitfs.route.ncl_opens"), 0u);
  EXPECT_GT(metrics->CounterValue("ncl.record.count"), 0u);
  EXPECT_GT(metrics->CounterValue("fabric.wr.writes_posted"), 0u);
  EXPECT_GT(metrics->CounterValue("controller.rpc.count"), 0u);
  EXPECT_GT(bed.tracer()->aggregates().count("ncl.record"), 0u);

  // Crash + restart: the application replay span appears and recovery
  // phases land in the same tracer.
  bed.CrashServer(server.get());
  server = bed.MakeServer("app-1");
  auto kv2 = bed.StartKvStore(server.get(), kv_options);
  ASSERT_TRUE(kv2.ok());
  EXPECT_GT(bed.tracer()->aggregates().count("app.recover.replay"), 0u);
  EXPECT_GT(bed.tracer()->aggregates().count("ncl.recover"), 0u);
  EXPECT_GT(metrics->CounterValue("dfs.client.fsyncs") +
                metrics->CounterValue("dfs.client.background_syncs"),
            0u);

  std::string json = metrics->ToJson();
  EXPECT_NE(json.find("\"ncl.record.count\""), std::string::npos);
}

}  // namespace
}  // namespace splitft
