// Chaos harness tests: the new fabric fault-injection primitives, the
// client-side RetryPolicy (suspect slots, controller outage retries,
// unreachable setup processes), the promoted Fig 12 double-crash scenario,
// and the seeded random campaign with its safety/liveness invariants.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/chaos/campaign.h"
#include "src/chaos/chaos_engine.h"
#include "src/chaos/fault_plan.h"
#include "src/controller/controller.h"
#include "src/harness/testbed.h"
#include "src/ncl/ncl_client.h"
#include "src/ncl/peer.h"
#include "src/ncl/peer_directory.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/rdma/fabric.h"
#include "src/sim/params.h"
#include "src/sim/retry.h"
#include "src/sim/simulation.h"

namespace splitft {
namespace {

// ---------------------------------------------------- Fabric primitives --

class ChaosFabricTest : public ::testing::Test {
 protected:
  ChaosFabricTest() : fabric_(&sim_, &params_) {
    app_ = fabric_.AddNode("app");
    peer_ = fabric_.AddNode("peer1");
  }

  Completion WaitCompletion(QueuePair* qp) {
    Completion c;
    EXPECT_TRUE(sim_.RunUntilPredicate([&] { return qp->PollCq(&c); }));
    return c;
  }

  Simulation sim_;
  SimParams params_;
  Fabric fabric_;
  NodeId app_;
  NodeId peer_;
};

TEST_F(ChaosFabricTest, PartitionForHealsAutomatically) {
  fabric_.PartitionFor(app_, peer_, Millis(2));
  EXPECT_TRUE(fabric_.IsPartitioned(app_, peer_));
  sim_.RunUntil(sim_.Now() + Millis(3));
  EXPECT_FALSE(fabric_.IsPartitioned(app_, peer_));
}

TEST_F(ChaosFabricTest, CancelledHealLeavesPartitionInPlace) {
  uint64_t token = fabric_.PartitionFor(app_, peer_, Millis(2));
  sim_.Cancel(token);
  sim_.RunUntil(sim_.Now() + Millis(5));
  EXPECT_TRUE(fabric_.IsPartitioned(app_, peer_));
}

TEST_F(ChaosFabricTest, LinkDelaySpikeSlowsWrites) {
  auto rkey = fabric_.RegisterRegion(peer_, 64);
  ASSERT_TRUE(rkey.ok());
  QueuePair qp(&fabric_, app_, peer_);

  SimTime t0 = sim_.Now();
  qp.PostWrite(*rkey, 0, "x");
  WaitCompletion(&qp);
  SimTime baseline = sim_.Now() - t0;

  fabric_.SetLinkDelay(app_, peer_, Micros(300));
  t0 = sim_.Now();
  qp.PostWrite(*rkey, 0, "x");
  WaitCompletion(&qp);
  SimTime delayed = sim_.Now() - t0;
  EXPECT_GE(delayed - baseline, Micros(300));

  fabric_.SetLinkDelay(app_, peer_, 0);
  t0 = sim_.Now();
  qp.PostWrite(*rkey, 0, "x");
  WaitCompletion(&qp);
  EXPECT_LT(sim_.Now() - t0, delayed);
}

TEST_F(ChaosFabricTest, CompletionDelayDefersCqNotData) {
  auto rkey = fabric_.RegisterRegion(peer_, 64);
  ASSERT_TRUE(rkey.ok());
  fabric_.SetCompletionDelay(app_, peer_, Millis(1));
  QueuePair qp(&fabric_, app_, peer_);
  qp.PostWrite(*rkey, 0, "durable");
  // The data lands at the normal time even though the completion is held.
  sim_.RunUntil(sim_.Now() + Micros(100));
  auto buf = fabric_.RegionBuffer(peer_, *rkey);
  ASSERT_TRUE(buf.ok());
  EXPECT_EQ((*buf)->substr(0, 7), "durable");
  Completion dummy;
  EXPECT_FALSE(qp.PollCq(&dummy));
  Completion c = WaitCompletion(&qp);
  EXPECT_EQ(c.status, WcStatus::kSuccess);
}

TEST_F(ChaosFabricTest, NicRetryWindowSurvivesHealedPartition) {
  params_.rdma.unreachable_retry_timeout = Millis(2);
  auto rkey = fabric_.RegisterRegion(peer_, 64);
  ASSERT_TRUE(rkey.ok());
  QueuePair qp(&fabric_, app_, peer_);  // established before the partition
  fabric_.PartitionFor(app_, peer_, Millis(1));
  qp.PostWrite(*rkey, 0, "retried");
  Completion c = WaitCompletion(&qp);
  // The partition healed inside the NIC retransmission window: no error
  // ever surfaced.
  EXPECT_EQ(c.status, WcStatus::kSuccess);
  EXPECT_GT(fabric_.stats().wr_retries, 0u);
  EXPECT_EQ(fabric_.stats().wr_retry_recoveries, 1u);
  auto buf = fabric_.RegionBuffer(peer_, *rkey);
  ASSERT_TRUE(buf.ok());
  EXPECT_EQ((*buf)->substr(0, 7), "retried");
}

TEST_F(ChaosFabricTest, NicRetryWindowPreservesSqOrdering) {
  // A heal landing between retry ticks must not let a later WR (the
  // header) overtake the retrying head-of-line WR (the data) — §4.4's
  // correctness argument depends on SQ ordering.
  params_.rdma.unreachable_retry_timeout = Millis(2);
  auto rkey = fabric_.RegisterRegion(peer_, 64);
  ASSERT_TRUE(rkey.ok());
  QueuePair qp(&fabric_, app_, peer_);
  fabric_.PartitionFor(app_, peer_, Micros(120));
  qp.PostWrite(*rkey, 8, "data");
  qp.PostWrite(*rkey, 0, "hdr");
  std::vector<uint64_t> order;
  while (order.size() < 2) {
    Completion c = WaitCompletion(&qp);
    ASSERT_EQ(c.status, WcStatus::kSuccess);
    order.push_back(c.wr_id);
  }
  EXPECT_LT(order[0], order[1]);
  auto buf = fabric_.RegionBuffer(peer_, *rkey);
  EXPECT_EQ((*buf)->substr(8, 4), "data");
  EXPECT_EQ((*buf)->substr(0, 3), "hdr");
}

TEST_F(ChaosFabricTest, NicRetryWindowExhaustsToRetryExceeded) {
  params_.rdma.unreachable_retry_timeout = Millis(1);
  auto rkey = fabric_.RegisterRegion(peer_, 64);
  ASSERT_TRUE(rkey.ok());
  QueuePair qp(&fabric_, app_, peer_);
  fabric_.SetPartitioned(app_, peer_, true);
  qp.PostWrite(*rkey, 0, "lost");
  Completion c = WaitCompletion(&qp);
  EXPECT_EQ(c.status, WcStatus::kRetryExceeded);
}

// --------------------------------------------------- RetryPolicy basics --

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndClamps) {
  RetryPolicy policy = RetryPolicy::Transient(16, Seconds(10));
  policy.jitter = 0;  // deterministic for the assertion
  RetryState state(&policy, 0);
  Rng rng(1);
  SimTime prev = 0;
  for (int i = 0; i < 10; ++i) {
    SimTime b = state.NextBackoff(&rng);
    EXPECT_GE(b, prev);
    EXPECT_LE(b, policy.max_backoff);
    prev = b;
  }
  EXPECT_EQ(prev, policy.max_backoff);
}

TEST(RetryPolicyTest, DeadlineStopsRetries) {
  RetryPolicy policy = RetryPolicy::Transient(100, Millis(1));
  RetryState state(&policy, 0);
  EXPECT_TRUE(state.ShouldRetry(0));
  EXPECT_FALSE(state.ShouldRetry(Millis(1)));
}

TEST(RetryPolicyTest, LegacyPolicyNeverRetries) {
  RetryPolicy policy;  // defaults: max_attempts = 1
  RetryState state(&policy, 0);
  EXPECT_FALSE(state.ShouldRetry(0));
}

// ----------------------------------------------- Client-side transients --

constexpr uint64_t kLend = 512ull << 20;

class ChaosNclTest : public ::testing::Test {
 protected:
  ChaosNclTest() : fabric_(&sim_, &params_), controller_(&sim_, &params_) {
    app_node_ = fabric_.AddNode("app-server");
  }

  // Client fault counters land in the fixture registry ("ncl.client.*");
  // every client this fixture makes shares it, so values aggregate.
  uint64_t ClientCounter(const std::string& name) {
    return metrics_.CounterValue("ncl.client." + name);
  }

  void StartPeers(int n, uint64_t lend = kLend) {
    for (int i = 0; i < n; ++i) {
      auto peer = std::make_unique<LogPeer>("p" + std::to_string(i), &fabric_,
                                            &controller_, lend);
      EXPECT_TRUE(peer->Start().ok());
      directory_.Register(peer.get());
      peers_.push_back(std::move(peer));
    }
  }

  NclConfig TransientConfig() {
    NclConfig config;
    config.app_id = "chaos-test";
    config.default_capacity = 1 << 20;
    config.retry = RetryPolicy::Transient(8, Millis(20));
    return config;
  }

  std::unique_ptr<NclClient> MakeClient(NclConfig config) {
    return std::make_unique<NclClient>(config, &fabric_, &controller_,
                                       &directory_, app_node_,
                                       ObsContext{&metrics_, nullptr});
  }

  LogPeer* PeerNamed(const std::string& name) {
    return directory_.Lookup(name);
  }

  Simulation sim_;
  SimParams params_;
  MetricsRegistry metrics_;
  Fabric fabric_;
  Controller controller_;
  PeerDirectory directory_;
  std::vector<std::unique_ptr<LogPeer>> peers_;
  NodeId app_node_;
};

TEST_F(ChaosNclTest, PartitionHealingWithinDeadlineAvoidsReplacement) {
  StartPeers(3);
  auto client = MakeClient(TransientConfig());
  auto file = client->Create("wal");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("before").ok());

  // Cut the app's links to a majority of the peers; both heal inside the
  // 20 ms retry deadline. The in-flight append must complete without any
  // peer being demoted or replaced.
  for (const std::string& name : (*file)->peer_names()) {
    LogPeer* peer = PeerNamed(name);
    if (peer != peers_[2].get()) {
      fabric_.PartitionFor(app_node_, peer->node(), Millis(3));
    }
  }
  ASSERT_TRUE((*file)->Append("during-partition").ok());
  EXPECT_GE(ClientCounter("suspect_retries"), 2u);
  EXPECT_GE(ClientCounter("transient_recoveries"), 1u);

  // The append returns once a majority acked, so the second suspect may
  // still be mid-resurrection; retries are driven from inside Append, so a
  // few more appends spaced out in virtual time drive it home.
  for (int i = 0; i < 5 && ClientCounter("transient_recoveries") < 2; ++i) {
    sim_.RunUntil(sim_.Now() + Millis(2));
    ASSERT_TRUE((*file)->Append("after").ok());
  }
  EXPECT_EQ(client->peers_replaced(), 0);
  EXPECT_EQ(ClientCounter("permanent_demotions"), 0u);
  EXPECT_EQ(ClientCounter("transient_recoveries"), 2u);
  EXPECT_EQ((*file)->alive_peers(), 3);
  EXPECT_TRUE((*file)->Delete().ok());
}

TEST_F(ChaosNclTest, PartitionOutlastingDeadlineTriggersReplacement) {
  StartPeers(5);  // 3 assigned + 2 spares for replacement
  NclConfig config = TransientConfig();
  config.retry = RetryPolicy::Transient(8, Millis(5));
  auto client = MakeClient(config);
  auto file = client->Create("wal");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("before").ok());

  // Partition two of the three assigned peers for far longer than the
  // 5 ms retry deadline: the policy exhausts, both are demoted, and the
  // existing replacement path restores the quorum.
  int cut = 0;
  for (const std::string& name : (*file)->peer_names()) {
    if (cut == 2) {
      break;
    }
    fabric_.PartitionFor(app_node_, PeerNamed(name)->node(), Millis(500));
    cut++;
  }
  ASSERT_TRUE((*file)->Append("during-partition").ok());
  EXPECT_EQ(client->peers_replaced(), 2);
  EXPECT_EQ(ClientCounter("permanent_demotions"), 2u);
  EXPECT_GE(ClientCounter("suspect_retries"), 2u);
  EXPECT_EQ((*file)->alive_peers(), 3);
}

TEST_F(ChaosNclTest, LegacyPolicyStillReplacesImmediately) {
  StartPeers(4);
  NclConfig config;
  config.app_id = "chaos-test";
  config.default_capacity = 1 << 20;  // default policy: max_attempts = 1
  auto client = MakeClient(config);
  auto file = client->Create("wal");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("x").ok());

  PeerNamed((*file)->peer_names()[0])->Crash();
  ASSERT_TRUE((*file)->Append("y").ok());
  EXPECT_EQ(client->peers_replaced(), 1);
  EXPECT_EQ(ClientCounter("permanent_demotions"), 1u);
  EXPECT_EQ(ClientCounter("suspect_retries"), 0u);
}

TEST_F(ChaosNclTest, ControllerOutageRetriedUntilHeal) {
  StartPeers(3);
  auto client = MakeClient(TransientConfig());
  controller_.OutageFor(Millis(4));
  // Create's first controller RPC lands inside the outage window and is
  // retried under the policy until the window closes.
  auto file = client->Create("wal");
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_GT(ClientCounter("controller_rpc_retries"), 0u);
  ASSERT_TRUE((*file)->Append("x").ok());
}

TEST_F(ChaosNclTest, ControllerOutageOutlastingDeadlineFails) {
  StartPeers(3);
  NclConfig config = TransientConfig();
  config.retry = RetryPolicy::Transient(4, Millis(5));
  auto client = MakeClient(config);
  controller_.OutageFor(Seconds(1));
  auto file = client->Create("wal");
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kTimedOut);
}

TEST_F(ChaosNclTest, UnreachableSetupProcessRetriedDuringRecovery) {
  StartPeers(3);
  auto client = MakeClient(TransientConfig());
  {
    auto file = client->Create("wal");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("payload").ok());
    // Drop the handle without releasing: the application crashed.
  }

  // p0's setup process is unreachable for 2 ms — well within the retry
  // deadline. Recovery must retry the lookup instead of treating p0 as
  // crashed and replacing it.
  directory_.SetUnreachable("p0", true);
  sim_.Schedule(Millis(2), [this] { directory_.SetUnreachable("p0", false); });

  auto recovered = MakeClient(TransientConfig());
  auto file = recovered->Recover("wal");
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_GT(ClientCounter("directory_lookup_retries"), 0u);
  EXPECT_EQ(recovered->peers_replaced(), 0);
  EXPECT_EQ((*file)->alive_peers(), 3);
  auto contents = (*file)->Read(0, (*file)->size());
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "payload");
}

TEST_F(ChaosNclTest, UnreachableSetupProcessWithLegacyPolicyIsReplaced) {
  StartPeers(4);
  NclConfig config;
  config.app_id = "chaos-test";
  config.default_capacity = 1 << 20;
  auto client = MakeClient(config);
  {
    auto file = client->Create("wal");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("payload").ok());
  }

  directory_.SetUnreachable("p0", true);
  auto recovered = MakeClient(config);
  auto file = recovered->Recover("wal");
  ASSERT_TRUE(file.ok());
  // Legacy semantics: the first nullptr lookup is final; p0 was replaced.
  EXPECT_EQ(recovered->peers_replaced(), 1);
  EXPECT_EQ(ClientCounter("directory_lookup_retries"), 0u);
}

TEST_F(ChaosNclTest, ReleaseFailureIsCountedNotSwallowed) {
  StartPeers(3);
  auto client = MakeClient(TransientConfig());
  auto file = client->Create("wal");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("x").ok());

  // p0 crashes and restarts between the last append and the delete: it is
  // alive but lost its mr-map, so Release fails — previously that error
  // was silently discarded.
  LogPeer* p0 = PeerNamed((*file)->peer_names()[0]);
  p0->Crash();
  ASSERT_TRUE(p0->Restart().ok());
  EXPECT_TRUE((*file)->Delete().ok());
  EXPECT_EQ(ClientCounter("release_failures"), 1u);
}

TEST_F(ChaosNclTest, TransientPartitionMidWindowRepostsUnackedSuffix) {
  // A peer drops out in the middle of a pipelined burst and heals within
  // the retry deadline: the resurrection must repost only the unacked
  // suffix of the window (not the full region), and nothing acked is lost.
  StartPeers(3);
  NclConfig config = TransientConfig();
  config.inflight_window = 8;
  auto client = MakeClient(config);
  auto file = client->Create("wal");
  ASSERT_TRUE(file.ok());
  std::string expect;
  auto burst = [&](int lo, int hi) {
    for (int i = lo; i < hi; ++i) {
      std::string rec = "r" + std::to_string(i) + ";";
      ASSERT_TRUE((*file)->AppendAsync(rec).ok());
      expect += rec;
    }
  };
  burst(0, 10);
  std::string victim = (*file)->peer_names()[0];
  fabric_.PartitionFor(app_node_, PeerNamed(victim)->node(), Millis(3));
  burst(10, 20);
  ASSERT_TRUE((*file)->Drain().ok());

  // Drive the resurrection home: retries run inside client calls.
  for (int i = 0; i < 8 && ClientCounter("transient_recoveries") < 1; ++i) {
    sim_.RunUntil(sim_.Now() + Millis(2));
    ASSERT_TRUE((*file)->Append("x").ok());
    expect += "x";
  }
  EXPECT_GE(ClientCounter("suffix_reposts"), 1u);
  EXPECT_GE(ClientCounter("transient_recoveries"), 1u);
  EXPECT_EQ(client->peers_replaced(), 0);
  EXPECT_EQ((*file)->alive_peers(), 3);
  auto contents = (*file)->Read(0, (*file)->size());
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, expect);
}

TEST_F(ChaosNclTest, PeerKilledMidWindowIsDemotedWithoutLosingAckedAppends) {
  // A peer dies for good in the middle of a pipelined burst: the slot is
  // demoted and replaced, the burst completes, and recovery after an app
  // crash still finds every committed append.
  StartPeers(4);
  NclConfig config;
  config.app_id = "chaos-test";
  config.default_capacity = 1 << 20;
  config.inflight_window = 8;
  std::string expect;
  {
    auto client = MakeClient(config);
    auto file = client->Create("wal");
    ASSERT_TRUE(file.ok());
    for (int i = 0; i < 10; ++i) {
      std::string rec = "r" + std::to_string(i) + ";";
      ASSERT_TRUE((*file)->AppendAsync(rec).ok());
      expect += rec;
    }
    PeerNamed((*file)->peer_names()[0])->Crash();
    for (int i = 10; i < 20; ++i) {
      std::string rec = "r" + std::to_string(i) + ";";
      ASSERT_TRUE((*file)->AppendAsync(rec).ok());
      expect += rec;
    }
    ASSERT_TRUE((*file)->Drain().ok());
    EXPECT_EQ((*file)->committed_seq(), (*file)->seq());
    EXPECT_GE(ClientCounter("permanent_demotions"), 1u);
    EXPECT_GE(client->peers_replaced(), 1);
    auto contents = (*file)->Read(0, (*file)->size());
    ASSERT_TRUE(contents.ok());
    EXPECT_EQ(*contents, expect);
    // The app crashes without a clean shutdown.
  }
  sim_.RunUntilIdle();
  auto client2 = MakeClient(config);
  auto recovered = client2->Recover("wal");
  ASSERT_TRUE(recovered.ok());
  auto contents = (*recovered)->Read(0, (*recovered)->size());
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, expect) << "acked appends lost across kill + crash";
}

// ------------------------------------------------ ChaosEngine + Testbed --

TEST(ChaosEngineTest, InjectsAndHealsAgainstTestbed) {
  TestbedOptions options;
  options.num_peers = 4;
  Testbed testbed(options);

  ChaosTargets targets;
  targets.sim = testbed.sim();
  targets.fabric = testbed.fabric();
  targets.controller = testbed.controller();
  targets.directory = testbed.directory();
  for (int i = 0; i < testbed.num_peers(); ++i) {
    targets.peers.push_back(testbed.peer(i));
  }
  targets.app_node = testbed.app_node();
  ChaosEngine engine(targets);

  FaultPlan plan;
  plan.Add({Millis(1), FaultKind::kTransientPartition, 0, Millis(50), 0});
  plan.Add({Millis(2), FaultKind::kControllerOutage, -1, Millis(50), 0});
  plan.Add({Millis(3), FaultKind::kPeerUnreachable, 1, Millis(50), 0});
  plan.Add({Millis(4), FaultKind::kLinkDelaySpike, 2, Millis(50), Micros(200)});
  engine.Schedule(plan);
  testbed.sim()->RunUntil(testbed.sim()->Now() + Millis(5));

  EXPECT_EQ(engine.faults_injected(), 4);
  EXPECT_TRUE(testbed.fabric()->IsPartitioned(testbed.app_node(),
                                              testbed.peer(0)->node()));
  EXPECT_TRUE(testbed.controller()->unavailable());
  EXPECT_EQ(testbed.directory()->Lookup(testbed.peer(1)->name()), nullptr);
  EXPECT_GT(testbed.fabric()->LinkDelay(testbed.app_node(),
                                        testbed.peer(2)->node()),
            0);

  engine.HealAll();
  EXPECT_FALSE(testbed.fabric()->IsPartitioned(testbed.app_node(),
                                               testbed.peer(0)->node()));
  EXPECT_FALSE(testbed.controller()->unavailable());
  EXPECT_NE(testbed.directory()->Lookup(testbed.peer(1)->name()), nullptr);
  EXPECT_EQ(testbed.fabric()->LinkDelay(testbed.app_node(),
                                        testbed.peer(2)->node()),
            0);
}

// ------------------------------------------- Fig 12 promoted to a ctest --

// The bench's failure script (two simultaneous peer crashes — quorum loss —
// then a third crash) as a correctness test: writes keep succeeding, the
// dead peers are replaced, and a post-crash recovery finds every write.
TEST(Fig12ScenarioTest, DoubleCrashQuorumLossReplacementAndRecovery) {
  TestbedOptions options;
  options.num_peers = 6;  // 3 assigned + spares for replacement
  Testbed testbed(options);
  auto server = testbed.MakeServer("fig12", {.ncl_capacity = 8ull << 20});
  KvStoreOptions kv_options;
  kv_options.mode = DurabilityMode::kSplitFt;
  kv_options.wal_capacity = 8ull << 20;
  auto store = testbed.StartKvStore(server.get(), kv_options);
  ASSERT_TRUE(store.ok());

  auto put_range = [&](int lo, int hi) {
    for (int i = lo; i < hi; ++i) {
      ASSERT_TRUE((*store)
                      ->Put("k" + std::to_string(i), "v" + std::to_string(i))
                      .ok());
    }
  };
  put_range(0, 100);

  // Two peers crash simultaneously: the quorum is lost and the next write
  // stalls until a replacement is caught up (§4.5.2 / Fig 12).
  testbed.peer(0)->Crash();
  testbed.peer(1)->Crash();
  put_range(100, 200);
  EXPECT_GE(server->fs->ncl()->peers_replaced(), 2);

  // One more crash: no quorum loss, just a blip.
  testbed.peer(2)->Crash();
  put_range(200, 300);
  EXPECT_GE(server->fs->ncl()->peers_replaced(), 3);

  // The server process dies; a fresh instance recovers from the surviving
  // peers. Every acknowledged write must be there.
  testbed.CrashServer(server.get());
  auto server2 = testbed.MakeServer("fig12", {.ncl_capacity = 8ull << 20});
  auto store2 = testbed.StartKvStore(server2.get(), kv_options);
  ASSERT_TRUE(store2.ok());
  for (int i = 0; i < 300; i += 37) {
    auto got = (*store2)->Get("k" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << "k" << i;
    EXPECT_EQ(*got, "v" + std::to_string(i));
  }
}

// ----------------------------------------------------------- Campaign --

TEST(ChaosCampaignTest, TwoHundredSeededSchedulesNoViolations) {
  CampaignOptions options;
  options.seed_from_env = false;  // the test always sweeps all seeds
  ASSERT_GE(options.runs, 200);
  CampaignResult result = RunChaosCampaign(options);

  for (const CampaignViolation& v : result.violations) {
    ADD_FAILURE() << "invariant '" << v.invariant << "' violated by seed "
                  << v.seed << ": " << v.detail
                  << "\nreproduce with SPLITFT_SEED=" << v.seed
                  << "\nschedule:\n"
                  << v.schedule;
  }
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.stats.runs, options.runs);

  // The sweep exercised the interesting machinery, not just happy paths.
  EXPECT_GT(result.stats.faults_injected, 0);
  EXPECT_GT(result.stats.appends_acked, 0);
  EXPECT_GT(result.stats.recoveries_ok, 0);
  EXPECT_GT(result.stats.peers_replaced, 0);
  EXPECT_GT(result.stats.suspect_retries, 0u);
  EXPECT_GT(result.stats.transient_recoveries, 0u);
  EXPECT_GT(result.stats.permanent_demotions, 0u);
  EXPECT_GT(result.stats.controller_rpc_retries, 0u);
}

TEST(ChaosCampaignTest, MixedPlannedAndUnplannedSchedulesNoViolations) {
  // Every seeded fault schedule now composes with a seeded *planned*
  // reconfiguration schedule (peer drains with live region migration,
  // re-activations) on the same virtual-time line. The invariants are
  // unchanged: planned operations must never lose acknowledged appends,
  // regress the committed prefix, or wedge the workload.
  CampaignOptions options;
  options.seed_from_env = false;
  options.with_reconfig = true;
  ASSERT_GE(options.runs, 200);
  CampaignResult result = RunChaosCampaign(options);

  for (const CampaignViolation& v : result.violations) {
    ADD_FAILURE() << "invariant '" << v.invariant << "' violated by seed "
                  << v.seed << ": " << v.detail
                  << "\nreproduce with SPLITFT_SEED=" << v.seed
                  << "\nschedule:\n"
                  << v.schedule;
  }
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.stats.runs, options.runs);

  // The planned machinery actually ran: across 200 seeds some drains
  // completed with real region migrations, and some were skipped because
  // they raced injected faults (dead peer, too few active peers).
  EXPECT_GT(result.stats.reconfig_ops_completed, 0);
  EXPECT_GT(result.stats.reconfig_ops_skipped, 0);
  EXPECT_GT(result.stats.regions_migrated, 0);
  // And the unplanned machinery still fired alongside it.
  EXPECT_GT(result.stats.faults_injected, 0);
  EXPECT_GT(result.stats.peers_replaced, 0);
  EXPECT_GT(result.stats.recoveries_ok, 0);
}

TEST(ChaosCampaignTest, SeedEnvOverrideRunsSingleSchedule) {
  CampaignOptions options;
  options.runs = 50;
  ASSERT_EQ(setenv("SPLITFT_SEED", "12345", 1), 0);
  CampaignResult result = RunChaosCampaign(options);
  unsetenv("SPLITFT_SEED");
  EXPECT_EQ(result.stats.runs, 1);
  EXPECT_TRUE(result.ok());
}

}  // namespace
}  // namespace splitft
