// Tests for the three mini-applications in all three durability modes,
// including the crash-durability semantics each mode promises.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/apps/kvstore/kv_store.h"
#include "src/apps/kvstore/wal.h"
#include "src/apps/lru_cache.h"
#include "src/apps/redis/redis.h"
#include "src/apps/sqlitelite/sqlite_lite.h"
#include "src/controller/controller.h"
#include "src/dfs/dfs.h"
#include "src/ncl/peer.h"
#include "src/rdma/fabric.h"
#include "src/splitft/split_fs.h"

namespace splitft {
namespace {

class AppsTest : public ::testing::Test {
 protected:
  AppsTest()
      : fabric_(&sim_, &params_),
        controller_(&sim_, &params_),
        cluster_(&sim_, &params_),
        dfs_(&cluster_, "app-server") {
    app_node_ = fabric_.AddNode("app-server");
    for (int i = 0; i < 4; ++i) {
      auto peer = std::make_unique<LogPeer>("p" + std::to_string(i), &fabric_,
                                            &controller_, 512ull << 20);
      EXPECT_TRUE(peer->Start().ok());
      directory_.Register(peer.get());
      peers_.push_back(std::move(peer));
    }
  }

  std::unique_ptr<SplitFs> MakeFs(const std::string& app) {
    NclConfig config;
    config.app_id = app;
    config.default_capacity = 8 << 20;
    return std::make_unique<SplitFs>(config, &dfs_, &fabric_, &controller_,
                                     &directory_, app_node_);
  }

  Simulation sim_;
  SimParams params_;
  Fabric fabric_;
  Controller controller_;
  DfsCluster cluster_;
  DfsClient dfs_;
  PeerDirectory directory_;
  std::vector<std::unique_ptr<LogPeer>> peers_;
  NodeId app_node_;
};

// --------------------------------------------------------------- LruCache --

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(30);
  cache.Put("a", "0123456789");  // 11 bytes
  cache.Put("b", "0123456789");
  ASSERT_TRUE(cache.Get("a").has_value());  // refresh a
  cache.Put("c", "0123456789");             // evicts b
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  EXPECT_GT(cache.evictions(), 0u);
}

TEST(LruCacheTest, OversizedEntryRejected) {
  LruCache cache(8);
  cache.Put("key", std::string(100, 'x'));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, UpdateReplacesValueAndAccounting) {
  LruCache cache(100);
  cache.Put("k", "aaaa");
  cache.Put("k", "bb");
  EXPECT_EQ(cache.used_bytes(), 3u);
  EXPECT_EQ(*cache.Get("k"), "bb");
}

// -------------------------------------------------------------------- WAL --

TEST(WalFormatTest, RoundTrip) {
  std::vector<KvWrite> batch = {{"k1", "v1"}, {"k2", "v2"}};
  std::string raw = WriteAheadLog::EncodeRecord(batch);
  std::vector<std::pair<std::string, std::string>> got;
  int batches = WriteAheadLog::Replay(raw, [&](auto k, auto v) {
    got.emplace_back(std::string(k), std::string(v));
  });
  EXPECT_EQ(batches, 1);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].first, "k1");
  EXPECT_EQ(got[1].second, "v2");
}

TEST(WalFormatTest, TornTailIsDropped) {
  std::string raw = WriteAheadLog::EncodeRecord({{"k1", "v1"}});
  raw += WriteAheadLog::EncodeRecord({{"k2", "v2"}});
  raw.resize(raw.size() - 3);  // tear the second record
  int applied = 0;
  int batches = WriteAheadLog::Replay(raw, [&](auto, auto) { applied++; });
  EXPECT_EQ(batches, 1);
  EXPECT_EQ(applied, 1);
}

TEST(WalFormatTest, CorruptRecordStopsReplay) {
  std::string raw = WriteAheadLog::EncodeRecord({{"k1", "v1"}});
  raw[10] ^= 0x40;  // flip a payload bit
  int batches = WriteAheadLog::Replay(raw, [&](auto, auto) {});
  EXPECT_EQ(batches, 0);
}

// ---------------------------------------------------------------- KvStore --

class KvStoreModeTest : public AppsTest,
                        public ::testing::WithParamInterface<DurabilityMode> {
 protected:
  KvStoreOptions SmallOptions() {
    KvStoreOptions options;
    options.mode = GetParam();
    options.memtable_bytes = 16 << 10;
    options.block_cache_bytes = 64 << 10;
    options.wal_capacity = 256 << 10;
    return options;
  }
};

TEST_P(KvStoreModeTest, PutGetRoundTrip) {
  auto fs = MakeFs("kv-app");
  auto store = KvStore::Open(fs.get(), &sim_, &params_, SmallOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("key1", "value1").ok());
  auto v = (*store)->Get("key1");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "value1");
  EXPECT_EQ((*store)->Get("missing").status().code(), StatusCode::kNotFound);
}

TEST_P(KvStoreModeTest, OverwriteReturnsLatest) {
  auto fs = MakeFs("kv-app");
  auto store = KvStore::Open(fs.get(), &sim_, &params_, SmallOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("k", "v1").ok());
  ASSERT_TRUE((*store)->Put("k", "v2").ok());
  EXPECT_EQ(*(*store)->Get("k"), "v2");
}

TEST_P(KvStoreModeTest, MemtableFlushCreatesSstableAndRotatesWal) {
  auto fs = MakeFs("kv-app");
  auto store = KvStore::Open(fs.get(), &sim_, &params_, SmallOptions());
  ASSERT_TRUE(store.ok());
  // ~64 KiB of writes: several flushes at a 16 KiB memtable.
  for (int i = 0; i < 512; ++i) {
    ASSERT_TRUE((*store)
                    ->Put("key-" + std::to_string(i), std::string(100, 'v'))
                    .ok());
  }
  EXPECT_GT((*store)->l0_tables() + (*store)->l1_tables(), 0u);
  // All values remain readable across memtable/sstable boundaries.
  for (int i = 0; i < 512; i += 37) {
    auto v = (*store)->Get("key-" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_EQ(v->size(), 100u);
  }
}

TEST_P(KvStoreModeTest, CompactionPreservesNewestValues) {
  auto fs = MakeFs("kv-app");
  KvStoreOptions options = SmallOptions();
  options.l0_compaction_trigger = 2;
  auto store = KvStore::Open(fs.get(), &sim_, &params_, options);
  ASSERT_TRUE(store.ok());
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE((*store)
                      ->Put("key-" + std::to_string(i),
                            "round-" + std::to_string(round))
                      .ok());
    }
  }
  EXPECT_LE((*store)->l0_tables(), 2u);
  for (int i = 0; i < 200; i += 13) {
    auto v = (*store)->Get("key-" + std::to_string(i));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, "round-5");
  }
}

TEST_P(KvStoreModeTest, RecoversAfterCleanFlush) {
  DurabilityMode mode = GetParam();
  auto fs = MakeFs("kv-app");
  {
    auto store = KvStore::Open(fs.get(), &sim_, &params_, SmallOptions());
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(
          (*store)->Put("key-" + std::to_string(i), std::string(100, 'x')).ok());
    }
    ASSERT_TRUE((*store)->FlushMemtable().ok());  // all data in sstables
    fs->SimulateCrash();
  }
  sim_.RunUntilIdle();
  auto fs2 = MakeFs("kv-app");
  auto store = KvStore::Open(fs2.get(), &sim_, &params_, SmallOptions());
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 300; i += 29) {
    EXPECT_TRUE((*store)->Get("key-" + std::to_string(i)).ok())
        << "mode=" << DurabilityModeName(mode) << " key " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, KvStoreModeTest,
                         ::testing::Values(DurabilityMode::kWeak,
                                           DurabilityMode::kStrong,
                                           DurabilityMode::kSplitFt),
                         [](const auto& param_info) {
                           return std::string(DurabilityModeName(param_info.param));
                         });

TEST_F(AppsTest, KvStoreWeakModeLosesUnflushedWrites) {
  KvStoreOptions options;
  options.mode = DurabilityMode::kWeak;
  auto fs = MakeFs("kv-weak");
  {
    auto store = KvStore::Open(fs.get(), &sim_, &params_, options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("acked", "but-volatile").ok());
    fs->SimulateCrash();  // before any flush
  }
  sim_.RunUntilIdle();
  auto fs2 = MakeFs("kv-weak");
  auto store = KvStore::Open(fs2.get(), &sim_, &params_, options);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->Get("acked").status().code(), StatusCode::kNotFound)
      << "weak mode unexpectedly kept unflushed data";
}

TEST_F(AppsTest, KvStoreStrongModeKeepsEveryAckedWrite) {
  KvStoreOptions options;
  options.mode = DurabilityMode::kStrong;
  auto fs = MakeFs("kv-strong");
  {
    auto store = KvStore::Open(fs.get(), &sim_, &params_, options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("acked", "durable").ok());
    fs->SimulateCrash();
  }
  sim_.RunUntilIdle();
  auto fs2 = MakeFs("kv-strong");
  auto store = KvStore::Open(fs2.get(), &sim_, &params_, options);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(*(*store)->Get("acked"), "durable");
}

TEST_F(AppsTest, KvStoreSplitFtKeepsEveryAckedWriteCheaply) {
  KvStoreOptions options;
  options.mode = DurabilityMode::kSplitFt;
  auto fs = MakeFs("kv-sft");
  SimTime put_latency;
  {
    auto store = KvStore::Open(fs.get(), &sim_, &params_, options);
    ASSERT_TRUE(store.ok());
    SimTime t0 = sim_.Now();
    ASSERT_TRUE((*store)->Put("acked", "durable").ok());
    put_latency = sim_.Now() - t0;
    fs->SimulateCrash();
  }
  sim_.RunUntilIdle();
  auto fs2 = MakeFs("kv-sft");
  auto store = KvStore::Open(fs2.get(), &sim_, &params_, options);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(*(*store)->Get("acked"), "durable");
  EXPECT_GT((*store)->recovered_batches(), 0u);
  // Strong durability at near-weak latency: microseconds, not milliseconds.
  EXPECT_LT(put_latency, Micros(50));
}

TEST_F(AppsTest, KvStoreBatchIsOneLogWrite) {
  KvStoreOptions options;
  options.mode = DurabilityMode::kStrong;
  auto fs = MakeFs("kv-batch");
  auto store = KvStore::Open(fs.get(), &sim_, &params_, options);
  ASSERT_TRUE(store.ok());
  uint64_t syncs_before = cluster_.sync_ops();
  std::vector<KvWrite> batch;
  for (int i = 0; i < 16; ++i) {
    batch.push_back({"bk-" + std::to_string(i), "v"});
  }
  ASSERT_TRUE((*store)->ApplyWriteBatch(batch).ok());
  EXPECT_EQ(cluster_.sync_ops() - syncs_before, 1u)
      << "group commit should issue exactly one synchronous log write";
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE((*store)->Get("bk-" + std::to_string(i)).ok());
  }
}

// ------------------------------------------------------------------ Redis --

class RedisModeTest : public AppsTest,
                      public ::testing::WithParamInterface<DurabilityMode> {
 protected:
  RedisOptions SmallOptions() {
    RedisOptions options;
    options.mode = GetParam();
    options.aof_rewrite_bytes = 64 << 10;
    options.aof_capacity = 256 << 10;
    return options;
  }
};

TEST_P(RedisModeTest, StringsHashesListsCounters) {
  auto fs = MakeFs("redis-app");
  auto redis = Redis::Open(fs.get(), &sim_, &params_, SmallOptions());
  ASSERT_TRUE(redis.ok());

  ASSERT_TRUE((*redis)->Put("greeting", "hello").ok());
  EXPECT_EQ(*(*redis)->Get("greeting"), "hello");

  ASSERT_TRUE((*redis)->HSet("user:1", "name", "ada").ok());
  ASSERT_TRUE((*redis)->HSet("user:1", "lang", "c++").ok());
  EXPECT_EQ(*(*redis)->HGet("user:1", "name"), "ada");
  EXPECT_FALSE((*redis)->HGet("user:1", "ghost").ok());

  ASSERT_TRUE((*redis)->LPush("queue", "job1").ok());
  ASSERT_TRUE((*redis)->LPush("queue", "job2").ok());
  EXPECT_EQ(*(*redis)->LIndex("queue", 0), "job2");
  EXPECT_EQ(*(*redis)->LIndex("queue", -1), "job1");

  auto counter = (*redis)->Incr("hits");
  ASSERT_TRUE(counter.ok());
  EXPECT_EQ(*counter, 1);
  counter = (*redis)->Incr("hits");
  EXPECT_EQ(*counter, 2);

  ASSERT_TRUE((*redis)->Del("greeting").ok());
  EXPECT_FALSE((*redis)->Get("greeting").ok());
}

TEST_P(RedisModeTest, AofRewriteReclaimsLog) {
  auto fs = MakeFs("redis-app");
  auto redis = Redis::Open(fs.get(), &sim_, &params_, SmallOptions());
  ASSERT_TRUE(redis.ok());
  for (int i = 0; i < 800; ++i) {
    ASSERT_TRUE(
        (*redis)->Put("key-" + std::to_string(i % 50), std::string(100, 'v')).ok());
  }
  EXPECT_GT((*redis)->rdb_snapshots(), 0);
  // The AOF was truncated by the rewrite: it is far smaller than the total
  // bytes written.
  EXPECT_LT((*redis)->aof_bytes(), 128u << 10);
  EXPECT_EQ(*(*redis)->Get("key-1"), std::string(100, 'v'));
}

TEST_P(RedisModeTest, RecoversFromRdbPlusAof) {
  DurabilityMode mode = GetParam();
  auto fs = MakeFs("redis-app");
  {
    auto redis = Redis::Open(fs.get(), &sim_, &params_, SmallOptions());
    ASSERT_TRUE(redis.ok());
    for (int i = 0; i < 600; ++i) {
      ASSERT_TRUE((*redis)
                      ->Put("key-" + std::to_string(i), std::string(100, 'v'))
                      .ok());
    }
    ASSERT_TRUE((*redis)->HSet("h", "f", "v").ok());
    if (mode == DurabilityMode::kWeak) {
      // Give the lazy flusher a chance; weak mode only promises eventual
      // durability.
      fs->dfs()->BackgroundFlushAll();
    }
    fs->SimulateCrash();
  }
  sim_.RunUntilIdle();
  auto fs2 = MakeFs("redis-app");
  auto redis = Redis::Open(fs2.get(), &sim_, &params_, SmallOptions());
  ASSERT_TRUE(redis.ok());
  EXPECT_EQ(*(*redis)->Get("key-599"), std::string(100, 'v'));
  EXPECT_EQ(*(*redis)->HGet("h", "f"), "v");
}

INSTANTIATE_TEST_SUITE_P(Modes, RedisModeTest,
                         ::testing::Values(DurabilityMode::kWeak,
                                           DurabilityMode::kStrong,
                                           DurabilityMode::kSplitFt),
                         [](const auto& param_info) {
                           return std::string(DurabilityModeName(param_info.param));
                         });

TEST_F(AppsTest, RedisWeakLosesRecentSplitFtDoesNot) {
  for (DurabilityMode mode :
       {DurabilityMode::kWeak, DurabilityMode::kSplitFt}) {
    std::string app =
        std::string("redis-") + std::string(DurabilityModeName(mode));
    RedisOptions options;
    options.mode = mode;
    auto fs = MakeFs(app);
    {
      auto redis = Redis::Open(fs.get(), &sim_, &params_, options);
      ASSERT_TRUE(redis.ok());
      ASSERT_TRUE((*redis)->Put("acked", "data").ok());
      fs->SimulateCrash();
    }
    sim_.RunUntilIdle();
    auto fs2 = MakeFs(app);
    auto redis = Redis::Open(fs2.get(), &sim_, &params_, options);
    ASSERT_TRUE(redis.ok());
    if (mode == DurabilityMode::kWeak) {
      EXPECT_FALSE((*redis)->Get("acked").ok());
    } else {
      EXPECT_EQ(*(*redis)->Get("acked"), "data");
    }
  }
}

// ------------------------------------------------------------- SqliteLite --

class SqliteModeTest : public AppsTest,
                       public ::testing::WithParamInterface<DurabilityMode> {
 protected:
  SqliteLiteOptions SmallOptions() {
    SqliteLiteOptions options;
    options.mode = GetParam();
    options.wal_capacity = 32 << 10;
    options.page_cache_bytes = 16 << 10;
    return options;
  }
};

TEST_P(SqliteModeTest, TransactionsCommitAtomically) {
  auto fs = MakeFs("sql-app");
  auto db = SqliteLite::Open(fs.get(), &sim_, &params_, SmallOptions());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)
                  ->ExecTransaction({{"alice", "100"}, {"bob", "200"}})
                  .ok());
  EXPECT_EQ(*(*db)->Get("alice"), "100");
  EXPECT_EQ(*(*db)->Get("bob"), "200");
}

TEST_P(SqliteModeTest, WalWrapsCircularly) {
  auto fs = MakeFs("sql-app");
  auto db = SqliteLite::Open(fs.get(), &sim_, &params_, SmallOptions());
  ASSERT_TRUE(db.ok());
  uint64_t gen0 = (*db)->wal_generation();
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(
        (*db)->Put("row-" + std::to_string(i % 40), std::string(100, 'x')).ok());
  }
  // The 32 KiB WAL cannot hold 400 x ~130 B frames: it must have
  // checkpointed and wrapped (same file, overwrite reclaim).
  EXPECT_GT((*db)->checkpoints(), 0);
  EXPECT_GT((*db)->wal_generation(), gen0);
  EXPECT_LT((*db)->wal_write_offset(), 32u << 10);
  EXPECT_EQ(*(*db)->Get("row-1"), std::string(100, 'x'));
}

TEST_P(SqliteModeTest, RecoversCommittedRows) {
  DurabilityMode mode = GetParam();
  auto fs = MakeFs("sql-app");
  {
    auto db = SqliteLite::Open(fs.get(), &sim_, &params_, SmallOptions());
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(
          (*db)->Put("row-" + std::to_string(i), "val-" + std::to_string(i)).ok());
    }
    if (mode == DurabilityMode::kWeak) {
      fs->dfs()->BackgroundFlushAll();
    }
    fs->SimulateCrash();
  }
  sim_.RunUntilIdle();
  auto fs2 = MakeFs("sql-app");
  auto db = SqliteLite::Open(fs2.get(), &sim_, &params_, SmallOptions());
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 300; i += 23) {
    auto v = (*db)->Get("row-" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << "row " << i;
    EXPECT_EQ(*v, "val-" + std::to_string(i));
  }
}

TEST_P(SqliteModeTest, RecoveryIgnoresStaleGenerationFrames) {
  // After a checkpoint wraps the WAL, old-generation frames beyond the
  // write pointer must not be replayed.
  auto fs = MakeFs("sql-app");
  SqliteLiteOptions options = SmallOptions();
  {
    auto db = SqliteLite::Open(fs.get(), &sim_, &params_, options);
    ASSERT_TRUE(db.ok());
    // Fill most of the WAL with generation-1 frames.
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE((*db)->Put("old-" + std::to_string(i), "gen1").ok());
    }
    // Force a checkpoint, then write a couple of gen-2 frames.
    ASSERT_TRUE((*db)->Checkpoint().ok());
    ASSERT_TRUE((*db)->Put("new-1", "gen2").ok());
    ASSERT_TRUE((*db)->Put("new-2", "gen2").ok());
    if (options.mode == DurabilityMode::kWeak) {
      fs->dfs()->BackgroundFlushAll();
    }
    fs->SimulateCrash();
  }
  sim_.RunUntilIdle();
  auto fs2 = MakeFs("sql-app");
  auto db = SqliteLite::Open(fs2.get(), &sim_, &params_, options);
  ASSERT_TRUE(db.ok());
  // Only the two gen-2 frames replay; the checkpointed rows come from db.
  EXPECT_EQ((*db)->replayed_frames(), 2u);
  EXPECT_EQ(*(*db)->Get("new-2"), "gen2");
  EXPECT_EQ(*(*db)->Get("old-5"), "gen1");
}

INSTANTIATE_TEST_SUITE_P(Modes, SqliteModeTest,
                         ::testing::Values(DurabilityMode::kWeak,
                                           DurabilityMode::kStrong,
                                           DurabilityMode::kSplitFt),
                         [](const auto& param_info) {
                           return std::string(DurabilityModeName(param_info.param));
                         });

TEST_F(AppsTest, SqliteSplitFtCircularWalSurvivesPeerFailure) {
  // End-to-end: circular WAL on NCL, a peer crash mid-run, then an app
  // crash — committed rows survive both.
  SqliteLiteOptions options;
  options.mode = DurabilityMode::kSplitFt;
  options.wal_capacity = 32 << 10;
  auto fs = MakeFs("sql-e2e");
  {
    auto db = SqliteLite::Open(fs.get(), &sim_, &params_, options);
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 150; ++i) {
      ASSERT_TRUE((*db)->Put("row-" + std::to_string(i), "before").ok());
    }
    peers_[1]->Crash();  // one peer dies; writes continue
    for (int i = 0; i < 150; ++i) {
      ASSERT_TRUE((*db)->Put("row-" + std::to_string(i), "after").ok());
    }
    fs->SimulateCrash();
  }
  sim_.RunUntilIdle();
  auto fs2 = MakeFs("sql-e2e");
  auto db = SqliteLite::Open(fs2.get(), &sim_, &params_, options);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 150; i += 17) {
    auto v = (*db)->Get("row-" + std::to_string(i));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, "after");
  }
}

}  // namespace
}  // namespace splitft
