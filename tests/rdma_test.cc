#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/rdma/fabric.h"
#include "src/sim/params.h"
#include "src/sim/simulation.h"

namespace splitft {
namespace {

class RdmaTest : public ::testing::Test {
 protected:
  RdmaTest() : fabric_(&sim_, &params_) {
    app_ = fabric_.AddNode("app");
    peer_ = fabric_.AddNode("peer1");
  }

  // Pumps the simulation until a completion is available on `qp`.
  Completion WaitCompletion(QueuePair* qp) {
    Completion c;
    EXPECT_TRUE(sim_.RunUntilPredicate([&] { return qp->PollCq(&c); }));
    return c;
  }

  Simulation sim_;
  SimParams params_;
  Fabric fabric_;
  NodeId app_;
  NodeId peer_;
};

TEST_F(RdmaTest, RegisterAndAccessRegion) {
  auto rkey = fabric_.RegisterRegion(peer_, 1024);
  ASSERT_TRUE(rkey.ok());
  auto buf = fabric_.RegionBuffer(peer_, *rkey);
  ASSERT_TRUE(buf.ok());
  EXPECT_EQ((*buf)->size(), 1024u);
}

TEST_F(RdmaTest, RegistrationChargesVirtualTime) {
  SimTime before = sim_.Now();
  ASSERT_TRUE(fabric_.RegisterRegion(peer_, 60ull * 1024 * 1024).ok());
  EXPECT_GT(sim_.Now() - before, Millis(10));
}

TEST_F(RdmaTest, OneSidedWriteLandsInRemoteMemory) {
  auto rkey = fabric_.RegisterRegion(peer_, 64);
  ASSERT_TRUE(rkey.ok());
  QueuePair qp(&fabric_, app_, peer_);
  uint64_t id = qp.PostWrite(*rkey, 8, "hello");
  Completion c = WaitCompletion(&qp);
  EXPECT_EQ(c.wr_id, id);
  EXPECT_EQ(c.status, WcStatus::kSuccess);
  auto buf = fabric_.RegionBuffer(peer_, *rkey);
  ASSERT_TRUE(buf.ok());
  EXPECT_EQ((*buf)->substr(8, 5), "hello");
}

TEST_F(RdmaTest, OneSidedReadReturnsData) {
  auto rkey = fabric_.RegisterRegion(peer_, 64);
  ASSERT_TRUE(rkey.ok());
  (*fabric_.RegionBuffer(peer_, *rkey))->replace(0, 4, "data");
  QueuePair qp(&fabric_, app_, peer_);
  qp.PostRead(*rkey, 0, 4);
  Completion c = WaitCompletion(&qp);
  EXPECT_EQ(c.status, WcStatus::kSuccess);
  EXPECT_EQ(c.read_data, "data");
}

TEST_F(RdmaTest, SendQueueOrderingPreserved) {
  auto rkey = fabric_.RegisterRegion(peer_, 16);
  ASSERT_TRUE(rkey.ok());
  QueuePair qp(&fabric_, app_, peer_);
  // Post several writes to the same offset; SQ ordering means the last one
  // posted must be the final value, and completions surface in post order.
  std::vector<uint64_t> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(qp.PostWrite(*rkey, 0, std::string(1, 'a' + i)));
  }
  for (int i = 0; i < 5; ++i) {
    Completion c = WaitCompletion(&qp);
    EXPECT_EQ(c.wr_id, ids[i]) << "completion out of post order";
    EXPECT_EQ(c.status, WcStatus::kSuccess);
  }
  EXPECT_EQ((*fabric_.RegionBuffer(peer_, *rkey))->substr(0, 1), "e");
}

TEST_F(RdmaTest, BatchedWritesCompleteInOrderWithOneDoorbell) {
  auto rkey = fabric_.RegisterRegion(peer_, 16);
  ASSERT_TRUE(rkey.ok());
  QueuePair qp(&fabric_, app_, peer_);
  uint64_t doorbells_before = fabric_.stats().doorbells;
  std::vector<std::string> payloads;
  for (int i = 0; i < 4; ++i) {
    payloads.push_back(std::string(1, 'a' + i));
  }
  std::vector<QueuePair::WriteOp> ops;
  for (const std::string& p : payloads) {
    ops.push_back({*rkey, 0, p});
  }
  std::vector<uint64_t> ids = qp.PostWriteBatch(std::move(ops));
  ASSERT_EQ(ids.size(), 4u);
  // One doorbell rings for the whole chain.
  EXPECT_EQ(fabric_.stats().doorbells - doorbells_before, 1u);
  for (int i = 0; i < 4; ++i) {
    Completion c = WaitCompletion(&qp);
    EXPECT_EQ(c.wr_id, ids[i]) << "completion out of post order";
    EXPECT_EQ(c.status, WcStatus::kSuccess);
  }
  // SQ ordering: the last WR in the chain wrote last.
  EXPECT_EQ((*fabric_.RegionBuffer(peer_, *rkey))->substr(0, 1), "d");
}

TEST_F(RdmaTest, DoorbellBatchingReducesPostCost) {
  auto rkey = fabric_.RegisterRegion(peer_, 64);
  ASSERT_TRUE(rkey.ok());
  auto post_cost = [&](bool batching) {
    params_.rdma.doorbell_batching = batching;
    QueuePair qp(&fabric_, app_, peer_);
    std::vector<QueuePair::WriteOp> ops;
    for (int i = 0; i < 8; ++i) {
      ops.push_back({*rkey, 0, "x"});
    }
    SimTime t0 = sim_.Now();
    qp.PostWriteBatch(std::move(ops));
    SimTime cost = sim_.Now() - t0;
    sim_.RunUntilIdle();
    return cost;
  };
  SimTime batched = post_cost(true);
  SimTime unbatched = post_cost(false);
  // Unbatched pays full post overhead (and a doorbell) per WR; batched pays
  // it once plus a small per-WR chaining cost.
  EXPECT_LT(batched * 2, unbatched);
  params_.rdma.doorbell_batching = true;
}

TEST_F(RdmaTest, UnbatchedPostingRingsOneDoorbellPerWr) {
  auto rkey = fabric_.RegisterRegion(peer_, 64);
  ASSERT_TRUE(rkey.ok());
  params_.rdma.doorbell_batching = false;
  QueuePair qp(&fabric_, app_, peer_);
  uint64_t doorbells_before = fabric_.stats().doorbells;
  std::vector<QueuePair::WriteOp> ops;
  for (int i = 0; i < 3; ++i) {
    ops.push_back({*rkey, 0, "x"});
  }
  qp.PostWriteBatch(std::move(ops));
  EXPECT_EQ(fabric_.stats().doorbells - doorbells_before, 3u);
  sim_.RunUntilIdle();
  params_.rdma.doorbell_batching = true;
}

TEST_F(RdmaTest, WriteBeyondRegionFails) {
  auto rkey = fabric_.RegisterRegion(peer_, 16);
  ASSERT_TRUE(rkey.ok());
  QueuePair qp(&fabric_, app_, peer_);
  qp.PostWrite(*rkey, 12, "too-long-payload");
  Completion c = WaitCompletion(&qp);
  EXPECT_EQ(c.status, WcStatus::kRemoteAccessError);
}

TEST_F(RdmaTest, InvalidatedRegionRejectsWrites) {
  auto rkey = fabric_.RegisterRegion(peer_, 64);
  ASSERT_TRUE(rkey.ok());
  ASSERT_TRUE(fabric_.InvalidateRegion(peer_, *rkey).ok());
  QueuePair qp(&fabric_, app_, peer_);
  qp.PostWrite(*rkey, 0, "x");
  Completion c = WaitCompletion(&qp);
  EXPECT_EQ(c.status, WcStatus::kRemoteAccessError);
  // Local access also fails after revocation.
  EXPECT_FALSE(fabric_.RegionBuffer(peer_, *rkey).ok());
}

TEST_F(RdmaTest, CrashWipesMemoryAndInvalidatesRkeys) {
  auto rkey = fabric_.RegisterRegion(peer_, 64);
  ASSERT_TRUE(rkey.ok());
  QueuePair qp(&fabric_, app_, peer_);
  qp.PostWrite(*rkey, 0, "will-be-lost");
  WaitCompletion(&qp);

  fabric_.CrashNode(peer_);
  EXPECT_FALSE(fabric_.IsAlive(peer_));
  fabric_.RestartNode(peer_);
  EXPECT_TRUE(fabric_.IsAlive(peer_));
  // Old rkey is gone even after restart: DRAM is volatile.
  EXPECT_FALSE(fabric_.RegionBuffer(peer_, *rkey).ok());
}

TEST_F(RdmaTest, WriteToCrashedNodeFailsAndQpEntersErrorState) {
  auto rkey = fabric_.RegisterRegion(peer_, 64);
  ASSERT_TRUE(rkey.ok());
  QueuePair qp(&fabric_, app_, peer_);
  fabric_.CrashNode(peer_);
  qp.PostWrite(*rkey, 0, "x");
  Completion c = WaitCompletion(&qp);
  EXPECT_EQ(c.status, WcStatus::kRetryExceeded);
  EXPECT_TRUE(qp.in_error_state());
  // Subsequent WRs are flushed with errors (ibverbs semantics).
  qp.PostWrite(*rkey, 0, "y");
  c = WaitCompletion(&qp);
  EXPECT_EQ(c.status, WcStatus::kFlushError);
}

TEST_F(RdmaTest, PartitionMakesWritesFail) {
  auto rkey = fabric_.RegisterRegion(peer_, 64);
  ASSERT_TRUE(rkey.ok());
  QueuePair qp(&fabric_, app_, peer_);
  fabric_.SetPartitioned(app_, peer_, true);
  qp.PostWrite(*rkey, 0, "x");
  Completion c = WaitCompletion(&qp);
  EXPECT_EQ(c.status, WcStatus::kRetryExceeded);
  // Unlike a crash, a partition does not wipe memory.
  fabric_.SetPartitioned(app_, peer_, false);
  EXPECT_TRUE(fabric_.RegionBuffer(peer_, *rkey).ok());
}

TEST_F(RdmaTest, InFlightWriteSurvivesInitiatorCrash) {
  // The application posts a WR and "crashes" (QueuePair destroyed) before
  // the WR completes. The data must still land on the peer — this is the
  // mechanism behind the divergent-peer scenario of Fig 7(i).
  auto rkey = fabric_.RegisterRegion(peer_, 64);
  ASSERT_TRUE(rkey.ok());
  {
    QueuePair qp(&fabric_, app_, peer_);
    qp.PostWrite(*rkey, 0, "landed");
    // Destroy the QP without polling: app crash.
  }
  sim_.RunUntilIdle();
  auto buf = fabric_.RegionBuffer(peer_, *rkey);
  ASSERT_TRUE(buf.ok());
  EXPECT_EQ((*buf)->substr(0, 6), "landed");
}

TEST_F(RdmaTest, WriteLatencyMatchesModel) {
  auto rkey = fabric_.RegisterRegion(peer_, 4096);
  ASSERT_TRUE(rkey.ok());
  QueuePair qp(&fabric_, app_, peer_);
  SimTime start = sim_.Now();
  qp.PostWrite(*rkey, 0, std::string(128, 'x'));
  WaitCompletion(&qp);
  SimTime elapsed = sim_.Now() - start;
  // One 128 B WR: ~1.3 us fabric latency + payload + post overhead.
  EXPECT_GT(elapsed, Micros(1.0));
  EXPECT_LT(elapsed, Micros(3.0));
}

TEST_F(RdmaTest, StatsAccumulate) {
  auto rkey = fabric_.RegisterRegion(peer_, 1024);
  ASSERT_TRUE(rkey.ok());
  QueuePair qp(&fabric_, app_, peer_);
  qp.PostWrite(*rkey, 0, std::string(100, 'x'));
  qp.PostRead(*rkey, 0, 50);
  sim_.RunUntilIdle();
  EXPECT_EQ(fabric_.stats().writes_posted, 1u);
  EXPECT_EQ(fabric_.stats().reads_posted, 1u);
  EXPECT_EQ(fabric_.stats().write_bytes, 100u);
  EXPECT_EQ(fabric_.stats().read_bytes, 50u);
}

TEST_F(RdmaTest, DeregisterFreesRegion) {
  auto rkey = fabric_.RegisterRegion(peer_, 64);
  ASSERT_TRUE(rkey.ok());
  ASSERT_TRUE(fabric_.DeregisterRegion(peer_, *rkey).ok());
  EXPECT_FALSE(fabric_.RegionBuffer(peer_, *rkey).ok());
  EXPECT_EQ(fabric_.DeregisterRegion(peer_, *rkey).code(),
            StatusCode::kNotFound);
}

// Parameterized sweep: payload size vs modeled latency monotonicity.
class RdmaLatencySweep : public RdmaTest,
                         public ::testing::WithParamInterface<size_t> {};

TEST_P(RdmaLatencySweep, LatencyGrowsWithPayload) {
  size_t size = GetParam();
  auto rkey = fabric_.RegisterRegion(peer_, 1 << 20);
  ASSERT_TRUE(rkey.ok());
  QueuePair qp(&fabric_, app_, peer_);

  SimTime start = sim_.Now();
  qp.PostWrite(*rkey, 0, std::string(size, 'x'));
  Completion c;
  ASSERT_TRUE(sim_.RunUntilPredicate([&] { return qp.PollCq(&c); }));
  SimTime small_lat = sim_.Now() - start;

  start = sim_.Now();
  qp.PostWrite(*rkey, 0, std::string(size * 4, 'x'));
  ASSERT_TRUE(sim_.RunUntilPredicate([&] { return qp.PollCq(&c); }));
  SimTime big_lat = sim_.Now() - start;

  EXPECT_GT(big_lat, small_lat);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RdmaLatencySweep,
                         ::testing::Values(128, 1024, 8192, 65536));

}  // namespace
}  // namespace splitft
