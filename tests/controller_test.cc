#include <gtest/gtest.h>

#include <set>

#include "src/controller/controller.h"
#include "src/controller/znode_store.h"
#include "src/sim/params.h"
#include "src/sim/simulation.h"

namespace splitft {
namespace {

// ------------------------------------------------------------ ZnodeStore --

TEST(ZnodeStoreTest, CreateGetSetDelete) {
  ZnodeStore store;
  ASSERT_TRUE(store.Create("/a", "v0").ok());
  auto node = store.Get("/a");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->data, "v0");
  EXPECT_EQ(node->version, 0);

  ASSERT_TRUE(store.Set("/a", "v1").ok());
  node = store.Get("/a");
  EXPECT_EQ(node->data, "v1");
  EXPECT_EQ(node->version, 1);

  ASSERT_TRUE(store.Delete("/a").ok());
  EXPECT_FALSE(store.Exists("/a"));
  EXPECT_EQ(store.Get("/a").status().code(), StatusCode::kNotFound);
}

TEST(ZnodeStoreTest, CreateIsFirstWins) {
  ZnodeStore store;
  ASSERT_TRUE(store.Create("/lease", "owner1").ok());
  Status second = store.Create("/lease", "owner2");
  EXPECT_EQ(second.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(store.Get("/lease")->data, "owner1");
}

TEST(ZnodeStoreTest, VersionedSetRejectsStaleWriter) {
  ZnodeStore store;
  ASSERT_TRUE(store.Create("/n", "a").ok());
  ASSERT_TRUE(store.Set("/n", "b", 0).ok());
  EXPECT_EQ(store.Set("/n", "c", 0).code(), StatusCode::kAborted);
  EXPECT_TRUE(store.Set("/n", "c", 1).ok());
}

TEST(ZnodeStoreTest, EphemeralNodesDieWithSession) {
  ZnodeStore store;
  SessionId s1 = store.OpenSession();
  SessionId s2 = store.OpenSession();
  ASSERT_TRUE(store.Create("/servers/app1", "", s1).ok());
  ASSERT_TRUE(store.Create("/servers/app2", "", s2).ok());
  ASSERT_TRUE(store.Create("/persistent", "").ok());

  store.ExpireSession(s1);
  EXPECT_FALSE(store.Exists("/servers/app1"));
  EXPECT_TRUE(store.Exists("/servers/app2"));
  EXPECT_TRUE(store.Exists("/persistent"));
}

TEST(ZnodeStoreTest, ChildrenListsDirectOnly) {
  ZnodeStore store;
  ASSERT_TRUE(store.Create("/peers/p1", "").ok());
  ASSERT_TRUE(store.Create("/peers/p2", "").ok());
  ASSERT_TRUE(store.Create("/peers/p2/sub", "").ok());
  ASSERT_TRUE(store.Create("/other/x", "").ok());
  auto children = store.Children("/peers");
  EXPECT_EQ(children, (std::vector<std::string>{"p1", "p2"}));
  EXPECT_TRUE(store.Children("/empty").empty());
}

// ------------------------------------------------------------ Controller --

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() : controller_(&sim_, &params_) {}

  Simulation sim_;
  SimParams params_;
  Controller controller_;
};

TEST_F(ControllerTest, PeerRegistrationAndLookup) {
  ASSERT_TRUE(controller_.RegisterPeer("p1", 7, 1 << 30).ok());
  auto rec = controller_.GetPeer("p1");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->node, 7u);
  EXPECT_EQ(rec->available_bytes, 1u << 30);
}

TEST_F(ControllerTest, ReRegistrationReplacesRecord) {
  ASSERT_TRUE(controller_.RegisterPeer("p1", 7, 100).ok());
  ASSERT_TRUE(controller_.RegisterPeer("p1", 9, 200).ok());
  auto rec = controller_.GetPeer("p1");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->node, 9u);
  EXPECT_EQ(rec->available_bytes, 200u);
}

TEST_F(ControllerTest, GetPeersFiltersByMemoryAndExclusion) {
  ASSERT_TRUE(controller_.RegisterPeer("p1", 1, 1000).ok());
  ASSERT_TRUE(controller_.RegisterPeer("p2", 2, 2000).ok());
  ASSERT_TRUE(controller_.RegisterPeer("p3", 3, 3000).ok());
  ASSERT_TRUE(controller_.RegisterPeer("p4", 4, 50).ok());

  auto peers = controller_.GetPeers(3, 500, {});
  ASSERT_TRUE(peers.ok());
  ASSERT_EQ(peers->size(), 3u);
  // Sorted by available memory, most first.
  EXPECT_EQ((*peers)[0].name, "p3");
  EXPECT_EQ((*peers)[1].name, "p2");
  EXPECT_EQ((*peers)[2].name, "p1");

  auto excl = controller_.GetPeers(2, 500, {"p2"});
  ASSERT_TRUE(excl.ok());
  EXPECT_EQ((*excl)[0].name, "p3");
  EXPECT_EQ((*excl)[1].name, "p1");
}

TEST_F(ControllerTest, GetPeersFailsWhenNotEnough) {
  ASSERT_TRUE(controller_.RegisterPeer("p1", 1, 1000).ok());
  auto peers = controller_.GetPeers(3, 500, {});
  EXPECT_EQ(peers.status().code(), StatusCode::kUnavailable);
}

TEST_F(ControllerTest, UpdatePeerMemoryChangesAllocationChoices) {
  ASSERT_TRUE(controller_.RegisterPeer("p1", 1, 1000).ok());
  ASSERT_TRUE(controller_.UpdatePeerMemory("p1", 10).ok());
  auto peers = controller_.GetPeers(1, 500, {});
  EXPECT_FALSE(peers.ok());
  EXPECT_EQ(controller_.UpdatePeerMemory("ghost", 5).code(),
            StatusCode::kNotFound);
}

TEST_F(ControllerTest, UnregisterPeerRemoves) {
  ASSERT_TRUE(controller_.RegisterPeer("p1", 1, 1000).ok());
  ASSERT_TRUE(controller_.UnregisterPeer("p1").ok());
  EXPECT_FALSE(controller_.GetPeer("p1").ok());
}

TEST_F(ControllerTest, EpochBumpsMonotonically) {
  EXPECT_FALSE(controller_.GetAppEpoch("app").ok());
  auto e1 = controller_.BumpAppEpoch("app");
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ(*e1, 1u);
  auto e2 = controller_.BumpAppEpoch("app");
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(*e2, 2u);
  auto cur = controller_.GetAppEpoch("app");
  ASSERT_TRUE(cur.ok());
  EXPECT_EQ(*cur, 2u);
}

TEST_F(ControllerTest, ApMapRoundTripWithSlashyFilenames) {
  ApMapEntry entry;
  entry.epoch = 3;
  entry.peers = {"p1", "p2", "p3"};
  // deeplint: allow(epoch-fence) controller unit test writes the map directly
  ASSERT_TRUE(controller_.SetApMap("app", "/db/wal/000042.log", entry).ok());

  auto got = controller_.GetApMap("app", "/db/wal/000042.log");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->epoch, 3u);
  EXPECT_EQ(got->peers, entry.peers);

  auto files = controller_.ListAppFiles("app");
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(files[0], "/db/wal/000042.log");

  ASSERT_TRUE(controller_.DeleteApMap("app", "/db/wal/000042.log").ok());
  EXPECT_FALSE(controller_.GetApMap("app", "/db/wal/000042.log").ok());
  EXPECT_TRUE(controller_.ListAppFiles("app").empty());
}

TEST_F(ControllerTest, ApMapOverwriteUpdatesPeers) {
  ApMapEntry entry;
  entry.epoch = 1;
  entry.peers = {"p1", "p2", "p3"};
  // deeplint: allow(epoch-fence) controller unit test writes the map directly
  ASSERT_TRUE(controller_.SetApMap("app", "f", entry).ok());
  entry.epoch = 2;
  entry.peers = {"p1", "p2", "p9"};  // p3 replaced
  // deeplint: allow(epoch-fence) controller unit test writes the map directly
  ASSERT_TRUE(controller_.SetApMap("app", "f", entry).ok());
  auto got = controller_.GetApMap("app", "f");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->epoch, 2u);
  EXPECT_EQ(got->peers.back(), "p9");
}

TEST_F(ControllerTest, ServerLeaseIsExclusive) {
  auto lease1 = controller_.AcquireServerLease("app");
  ASSERT_TRUE(lease1.ok());
  auto lease2 = controller_.AcquireServerLease("app");
  EXPECT_EQ(lease2.status().code(), StatusCode::kAborted);

  // The lease is released when the owning session dies (app crash), after
  // which a new instance can acquire it.
  controller_.ExpireSession(*lease1);
  auto lease3 = controller_.AcquireServerLease("app");
  EXPECT_TRUE(lease3.ok());
}

TEST_F(ControllerTest, DifferentAppsHaveIndependentLeases) {
  ASSERT_TRUE(controller_.AcquireServerLease("app-a").ok());
  EXPECT_TRUE(controller_.AcquireServerLease("app-b").ok());
}

TEST_F(ControllerTest, RpcsChargeVirtualTime) {
  SimTime before = sim_.Now();
  ASSERT_TRUE(controller_.RegisterPeer("p1", 1, 1000).ok());
  EXPECT_GE(sim_.Now() - before, params_.controller.rpc_latency);
  EXPECT_EQ(controller_.rpc_count(), 1u);
}

}  // namespace
}  // namespace splitft
