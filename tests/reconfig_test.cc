// Planned reconfiguration tests (DESIGN.md §13): peer drain with live
// region migration (epoch-fenced snapshot copy + suffix catch-up + ap-map
// cutover), the SetApMap bump-then-write fence, cooperative lease
// handover, rolling dfs server restarts, and the ReconfigEngine/Plan
// machinery — including the migrate-vs-crash and migrate-vs-append races.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/controller/controller.h"
#include "src/dfs/dfs.h"
#include "src/harness/testbed.h"
#include "src/ncl/ncl_client.h"
#include "src/ncl/peer.h"
#include "src/reconfig/reconfig_engine.h"
#include "src/reconfig/reconfig_plan.h"
#include "src/sim/simulation.h"

namespace splitft {
namespace {

TestbedOptions Options(int num_peers, int dfs_servers = 0) {
  TestbedOptions options;
  options.num_peers = num_peers;
  options.dfs_servers = dfs_servers;
  return options;
}

ReconfigEvent Event(SimTime at, ReconfigKind kind, int peer = -1,
                    int server = -1, SimTime duration = 0) {
  ReconfigEvent ev;
  ev.at = at;
  ev.kind = kind;
  ev.peer = peer;
  ev.server = server;
  ev.duration = duration;
  return ev;
}

// ------------------------------------------------ Controller: drain state --

TEST(PeerDrainStateTest, DrainingPeersAreSkippedByGetPeers) {
  Testbed testbed(Options(4));
  Controller* controller = testbed.controller();

  ASSERT_TRUE(controller->SetPeerState("peer-1", PeerState::kDraining).ok());
  auto rec = controller->GetPeer("peer-1");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->state, PeerState::kDraining);

  // Only 3 of the 4 registered peers remain eligible; asking for all 4 is
  // now kUnavailable, and the 3 returned never include the draining one.
  EXPECT_EQ(controller->GetPeers(4, 1, {}).status().code(),
            StatusCode::kUnavailable);
  auto peers = controller->GetPeers(3, 1, {});
  ASSERT_TRUE(peers.ok());
  for (const PeerRecord& p : *peers) {
    EXPECT_NE(p.name, "peer-1");
  }

  // Availability updates preserve the drain marker.
  ASSERT_TRUE(controller->UpdatePeerMemory("peer-1", 123).ok());
  rec = controller->GetPeer("peer-1");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->state, PeerState::kDraining);
  EXPECT_EQ(rec->available_bytes, 123u);

  // Re-registration (peer restart) clears it: a rebooted peer starts
  // active with empty memory.
  ASSERT_TRUE(controller->RegisterPeer("peer-1", rec->node, 456).ok());
  rec = controller->GetPeer("peer-1");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->state, PeerState::kActive);
}

TEST(PeerDrainStateTest, LogPeerDrainGaugesAndAllocationRejection) {
  Testbed testbed(Options(4));
  LogPeer* peer = testbed.peer(0);
  const Gauge* state =
      testbed.metrics()->FindGauge("ncl.peer.peer-0.state");
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->value(),
            static_cast<int64_t>(LogPeerState::kActive));

  ASSERT_TRUE(peer->StartDrain().ok());
  EXPECT_TRUE(peer->draining());
  EXPECT_EQ(state->value(),
            static_cast<int64_t>(LogPeerState::kDraining));

  // Fresh allocations are refused while draining.
  auto grant = peer->Allocate("app", "f", 4096, 1);
  EXPECT_FALSE(grant.ok());
  EXPECT_EQ(grant.status().code(), StatusCode::kResourceExhausted);

  ASSERT_TRUE(peer->EndDrain().ok());
  EXPECT_EQ(state->value(),
            static_cast<int64_t>(LogPeerState::kActive));
  EXPECT_TRUE(peer->Allocate("app", "f", 4096, 1).ok());

  peer->Crash();
  EXPECT_EQ(state->value(), static_cast<int64_t>(LogPeerState::kDead));
}

// ------------------------------------------------- SetApMap epoch fence --

TEST(ApMapFenceTest, WriteSkippingEpochBumpIsFenced) {
  Testbed testbed(Options(3));
  Controller* controller = testbed.controller();

  auto epoch = controller->BumpAppEpoch("app");
  ASSERT_TRUE(epoch.ok());
  ApMapEntry entry;
  entry.epoch = *epoch;
  entry.peers = {"peer-0", "peer-1", "peer-2"};
  // deeplint: allow(epoch-fence) test drives the fence directly
  ASSERT_TRUE(controller->SetApMap("app", "wal", entry).ok());

  // Identical same-epoch rewrite: idempotent (client RPC retries).
  // deeplint: allow(epoch-fence) idempotent-rewrite path under test
  EXPECT_TRUE(controller->SetApMap("app", "wal", entry).ok());

  // Changing the peer set without bumping the epoch violates
  // bump-then-write and must be fenced.
  ApMapEntry no_bump = entry;
  no_bump.peers = {"peer-0", "peer-1", "peer-3"};
  // deeplint: allow(epoch-fence) exercising the fence rejection path
  Status fenced = controller->SetApMap("app", "wal", no_bump);
  EXPECT_EQ(fenced.code(), StatusCode::kFailedPrecondition);

  // A stale writer (older epoch) is fenced even with the same peers.
  auto epoch2 = controller->BumpAppEpoch("app");
  ASSERT_TRUE(epoch2.ok());
  ApMapEntry current = entry;
  current.epoch = *epoch2;
  // deeplint: allow(epoch-fence) test drives the fence directly
  ASSERT_TRUE(controller->SetApMap("app", "wal", current).ok());
  ApMapEntry stale = entry;  // epoch1 < epoch2
  // deeplint: allow(epoch-fence) exercising the stale-writer fence
  Status stale_st = controller->SetApMap("app", "wal", stale);
  EXPECT_EQ(stale_st.code(), StatusCode::kFailedPrecondition);

  EXPECT_EQ(testbed.metrics()->CounterValue("controller.apmap.fenced_writes"),
            2u);

  // The stored entry is untouched by the fenced writes.
  auto stored = controller->GetApMap("app", "wal");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored->epoch, *epoch2);
  EXPECT_EQ(stored->peers, entry.peers);
}

// ------------------------------------------------------ Region migration --

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest() : testbed_(Options(6)) {}

  std::unique_ptr<NclClient> MakeClient(const std::string& app) {
    NclConfig config;
    config.app_id = app;
    config.fault_budget = 1;
    config.default_capacity = 64ull << 10;
    return std::make_unique<NclClient>(config, testbed_.fabric(),
                                       testbed_.controller(),
                                       testbed_.directory(),
                                       testbed_.app_node(), testbed_.obs());
  }

  static bool IsMember(const NclFile& file, const std::string& peer) {
    for (const std::string& name : file.peer_names()) {
      if (name == peer) {
        return true;
      }
    }
    return false;
  }

  Testbed testbed_;
};

TEST_F(MigrationTest, MigrateOffPeerMovesRegionAndBumpsEpoch) {
  auto client = MakeClient("mig");
  auto file = client->Create("wal");
  ASSERT_TRUE(file.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*file)->Append("payload-" + std::to_string(i)).ok());
  }

  const std::string victim = (*file)->peer_names()[0];
  auto before = testbed_.controller()->GetApMap("mig", "wal");
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(client->MigrateOffPeer(victim).ok());
  EXPECT_EQ(client->regions_migrated(), 1);
  EXPECT_FALSE(IsMember(**file, victim));

  // The cutover bumped the epoch and rewrote the ap-map with the new
  // membership.
  auto after = testbed_.controller()->GetApMap("mig", "wal");
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after->epoch, before->epoch);
  EXPECT_EQ(after->peers, (*file)->peer_names());

  // The drained-off region was released: the victim holds nothing.
  LogPeer* old_peer = testbed_.directory()->Lookup(victim);
  ASSERT_NE(old_peer, nullptr);
  EXPECT_FALSE(old_peer->LookupForRecovery("mig", "wal").ok());
  const Gauge* resident = testbed_.metrics()->FindGauge(
      "ncl.peer." + victim + ".regions_resident");
  ASSERT_NE(resident, nullptr);
  EXPECT_EQ(resident->value(), 0);

  // Appends keep working on the new membership.
  ASSERT_TRUE((*file)->Append("post-migration").ok());
}

TEST_F(MigrationTest, MigrationSurvivesAppendsAtTheCutoverBoundary) {
  auto client = MakeClient("race");
  auto file = client->Create("wal");
  ASSERT_TRUE(file.ok());
  std::string expect;
  for (int i = 0; i < 10; ++i) {
    std::string payload = "pre-" + std::to_string(i) + ";";
    ASSERT_TRUE((*file)->Append(payload).ok());
    expect += payload;
  }

  // Appends land *while the migration runs*: MigrateOffPeer pumps the
  // simulation through the snapshot copy and catch-up rounds, so appends
  // scheduled inside that window hit the catch-up/cutover boundary.
  const std::string victim = (*file)->peer_names()[1];
  int racing_acked = 0;
  for (int i = 0; i < 8; ++i) {
    std::string payload = "race-" + std::to_string(i) + ";";
    testbed_.sim()->ScheduleAt(
        testbed_.sim()->Now() + Micros(2) + i * Micros(4),
        [this, &file, &racing_acked, payload] {
          if ((*file)->AppendAsync(payload).ok()) {
            racing_acked++;
          }
        });
    expect += payload;
  }
  ASSERT_TRUE(client->MigrateOffPeer(victim).ok());
  EXPECT_FALSE(IsMember(**file, victim));
  // Let stragglers land, then drain the window.
  testbed_.sim()->RunUntil(testbed_.sim()->Now() + Millis(1));
  ASSERT_TRUE((*file)->Drain().ok());
  EXPECT_EQ(racing_acked, 8);

  // Crash the app and recover: every acknowledged byte (pre- and
  // mid-migration) must come back, in order, from the new membership.
  file->reset();
  auto fresh = MakeClient("race");
  auto recovered = fresh->Recover("wal");
  ASSERT_TRUE(recovered.ok());
  auto contents = (*recovered)->Read(0, (*recovered)->size());
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, expect);
  EXPECT_FALSE(IsMember(**recovered, victim));
}

TEST_F(MigrationTest, SourceCrashMidCopySupersedesMigration) {
  auto client = MakeClient("crash");
  auto file = client->Create("wal");
  ASSERT_TRUE(file.ok());
  // A fat log makes the snapshot bulk copy take long enough that events
  // scheduled a few microseconds out land mid-copy.
  std::string fat(32 << 10, 'x');
  ASSERT_TRUE((*file)->Append(fat).ok());

  const std::string victim = (*file)->peer_names()[0];
  LogPeer* victim_peer = testbed_.directory()->Lookup(victim);
  ASSERT_NE(victim_peer, nullptr);

  // Mid-copy, the source peer crashes AND an append discovers the death —
  // triggering the crash-driven ReplaceSlot, which bumps the epoch and
  // supersedes the planned migration.
  testbed_.sim()->ScheduleAt(testbed_.sim()->Now() + Micros(1),
                             [victim_peer] { victim_peer->Crash(); });
  bool replacement_append_ok = false;
  testbed_.sim()->ScheduleAt(
      testbed_.sim()->Now() + Micros(2),
      [&file, &replacement_append_ok] {
        replacement_append_ok = (*file)->Append("after-crash").ok();
      });

  Status st = client->MigrateOffPeer(victim);
  // The superseded migration is skipped, not an error; the crash-driven
  // replacement already moved the region off the dead source.
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(replacement_append_ok);
  EXPECT_EQ(client->regions_migrated(), 0);
  EXPECT_GE(client->peers_replaced(), 1);
  EXPECT_FALSE(IsMember(**file, victim));

  // The file is intact: recovery returns both appends.
  ASSERT_TRUE((*file)->Drain().ok());
  file->reset();
  auto fresh = MakeClient("crash");
  auto recovered = fresh->Recover("wal");
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ((*recovered)->size(), fat.size() + std::string("after-crash").size());
}

TEST_F(MigrationTest, DrainingPeerReceivesNoNewRegions) {
  ASSERT_TRUE(testbed_.peer(0)->StartDrain().ok());
  auto client = MakeClient("fresh");
  auto file = client->Create("wal");
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE(IsMember(**file, "peer-0"));
}

// -------------------------------------------------------- Lease handover --

TEST(LeaseHandoverTest, HandoverMovesTheLeaseWithoutAnUnleasedWindow) {
  Testbed testbed(Options(4));
  auto server = testbed.MakeServer("app-a");
  ASSERT_TRUE(server->start_status.ok());
  SessionId old_lease = server->fs->lease();
  ASSERT_NE(old_lease, kNoSession);

  ASSERT_TRUE(server->fs->HandOverLease().ok());
  SessionId new_lease = server->fs->lease();
  EXPECT_NE(new_lease, old_lease);

  // The lease is continuously held: a second instance still can't start.
  auto rival = testbed.MakeServer("app-a");
  EXPECT_EQ(rival->start_status.code(), StatusCode::kAborted);

  // The predecessor session no longer owns it and cannot steal it back.
  auto steal = testbed.controller()->TransferServerLease("app-a", old_lease);
  ASSERT_FALSE(steal.ok());
  EXPECT_EQ(steal.status().code(), StatusCode::kFailedPrecondition);

  // Expiring the *old* session must not release the successor's lease.
  testbed.controller()->ExpireSession(old_lease);
  auto rival2 = testbed.MakeServer("app-a");
  EXPECT_EQ(rival2->start_status.code(), StatusCode::kAborted);
}

TEST(LeaseHandoverTest, HandoverWithoutALeaseFailsPrecondition) {
  Testbed testbed(Options(4));
  auto first = testbed.MakeServer("app-b");
  ASSERT_TRUE(first->start_status.ok());
  auto second = testbed.MakeServer("app-b");
  ASSERT_EQ(second->start_status.code(), StatusCode::kAborted);
  EXPECT_EQ(second->fs->HandOverLease().code(),
            StatusCode::kFailedPrecondition);
}

// -------------------------------------------------- Rolling dfs restarts --

TEST(DfsRollingRestartTest, OfflineServerReroutesAndReplaysOnReturn) {
  Testbed testbed(Options(4, 3));
  DfsCluster* cluster = testbed.dfs_cluster();
  DfsClient client(cluster, "app");
  auto file = client.Open("f", {});
  ASSERT_TRUE(file.ok());

  ASSERT_TRUE(cluster->TakeServerOffline(1).ok());
  EXPECT_EQ(cluster->offline_server(), 1);
  // The rolling guarantee: a second concurrent restart is refused.
  EXPECT_EQ(cluster->TakeServerOffline(2).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(cluster->TakeServerOffline(1).code(),
            StatusCode::kFailedPrecondition);

  // A striped write spanning all three servers: server 1's share is
  // rerouted (the fsync succeeds without it) and accrues as its backlog.
  std::string data(3ull << 20, 'd');
  ASSERT_TRUE((*file)->Append(data).ok());
  ASSERT_TRUE((*file)->Sync().ok());
  EXPECT_GT(cluster->replay_backlog(1), 0u);
  EXPECT_GT(testbed.metrics()->CounterValue("dfs.cluster.rerouted_bytes"), 0u);
  EXPECT_EQ(testbed.metrics()->CounterValue("dfs.server.1.bytes_written"), 0u);

  ASSERT_TRUE(cluster->BringServerOnline(1).ok());
  EXPECT_EQ(cluster->offline_server(), -1);
  EXPECT_EQ(cluster->replay_backlog(1), 0u);
  EXPECT_GT(testbed.metrics()->CounterValue("dfs.cluster.replayed_bytes"), 0u);
  EXPECT_GT(testbed.metrics()->CounterValue("dfs.server.1.bytes_written"), 0u);
  EXPECT_EQ(testbed.metrics()->CounterValue("dfs.cluster.server_restarts"),
            1u);

  // Bringing an online server "back" is refused.
  EXPECT_EQ(cluster->BringServerOnline(1).code(),
            StatusCode::kFailedPrecondition);
}

TEST(DfsRollingRestartTest, SinglePipeClusterRefusesRestarts) {
  Testbed testbed(Options(4, 1));
  EXPECT_EQ(testbed.dfs_cluster()->TakeServerOffline(0).code(),
            StatusCode::kFailedPrecondition);
}

// ------------------------------------------------------- Plan and engine --

TEST(ReconfigPlanTest, RandomPlansAreSeedDeterministic) {
  ReconfigPlanOptions options;
  options.num_events = 8;
  options.num_dfs_servers = 3;
  ReconfigPlan a = ReconfigPlan::Random(42, options);
  ReconfigPlan b = ReconfigPlan::Random(42, options);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].peer, b.events()[i].peer);
  }
  // Sorted by start time, and non-trivially described.
  for (size_t i = 1; i < a.events().size(); ++i) {
    EXPECT_LE(a.events()[i - 1].at, a.events()[i].at);
  }
  EXPECT_FALSE(a.Describe().empty());
  EXPECT_NE(ReconfigPlan::Random(43, options).Describe(), a.Describe());
}

TEST(ReconfigEngineTest, ExecutesAFullPlannedCampaign) {
  Testbed testbed(Options(6, 3));
  auto server = testbed.MakeServer("app-r");
  ASSERT_TRUE(server->start_status.ok());
  SplitOpenOptions oncl;
  oncl.oncl = true;
  auto file = server->fs->Open("wal", oncl);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("seed").ok());

  ReconfigTargets targets;
  targets.sim = testbed.sim();
  targets.controller = testbed.controller();
  for (int i = 0; i < testbed.num_peers(); ++i) {
    targets.peers.push_back(testbed.peer(i));
  }
  targets.dfs = testbed.dfs_cluster();
  targets.fs = server->fs.get();
  ReconfigEngine engine(targets, testbed.obs());

  // Drain a peer that actually holds the file's region so the plan
  // exercises a real migration ("peer-<i>" → index i).
  int victim = -1;
  {
    auto apmap = testbed.controller()->GetApMap("app-r", "wal");
    ASSERT_TRUE(apmap.ok());
    ASSERT_FALSE(apmap->peers.empty());
    victim = std::stoi(apmap->peers[0].substr(std::string("peer-").size()));
  }

  SessionId lease_before = server->fs->lease();
  ReconfigPlan plan;
  plan.Add(Event(Micros(50), ReconfigKind::kPeerDrain, victim))
      .Add(Event(Micros(300), ReconfigKind::kLeaseHandover))
      .Add(Event(Micros(400), ReconfigKind::kDfsRestart, -1, 2, Micros(200)))
      .Add(Event(Millis(1), ReconfigKind::kPeerActivate, victim));
  engine.Schedule(plan);
  // The drain's migration pumps the simulation forward (controller RPCs
  // model quorum-committed ZooKeeper ops), which pushes later plan events —
  // and the dfs bring-online leg, scheduled relative to wherever the clock
  // then is — past their nominal times; run until the whole plan retired.
  ASSERT_TRUE(testbed.sim()->RunUntilPredicate([&] {
    return engine.ops_completed() + engine.ops_skipped() +
                   engine.ops_failed() >=
               4 &&
           testbed.dfs_cluster()->offline_server() < 0;
  }));

  EXPECT_EQ(engine.ops_failed(), 0) << [&] {
    std::string all;
    for (const std::string& line : engine.log()) {
      all += line + "\n";
    }
    return all;
  }();
  EXPECT_EQ(engine.ops_completed(), 4);
  EXPECT_FALSE(testbed.peer(victim)->draining());
  EXPECT_NE(server->fs->lease(), lease_before);
  EXPECT_EQ(testbed.dfs_cluster()->offline_server(), -1);
  EXPECT_EQ(testbed.metrics()->CounterValue("reconfig.ops.completed"), 4u);
  EXPECT_EQ(server->fs->ncl()->regions_migrated(), 1);

  // The log is still writable and intact after the full campaign.
  ASSERT_TRUE((*file)->Append("after").ok());
  ASSERT_TRUE((*file)->Sync().ok());
}

TEST(ReconfigEngineTest, DrainMigratesPooledCoTenants) {
  // Two tenants share the testbed pool (DESIGN.md §14); draining a peer
  // that holds regions for both must migrate both, not just the primary
  // client named in targets.fs.
  Testbed testbed(Options(5));
  auto s1 = testbed.MakeServer("tenant-a", {.pool = testbed.shared_pool()});
  auto s2 = testbed.MakeServer("tenant-b", {.pool = testbed.shared_pool()});
  ASSERT_TRUE(s1->start_status.ok());
  ASSERT_TRUE(s2->start_status.ok());
  SplitOpenOptions oncl;
  oncl.oncl = true;
  auto f1 = s1->fs->Open("wal", oncl);
  auto f2 = s2->fs->Open("wal", oncl);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  ASSERT_TRUE((*f1)->Append("a0").ok());
  ASSERT_TRUE((*f2)->Append("b0").ok());

  ReconfigTargets targets;
  targets.sim = testbed.sim();
  targets.controller = testbed.controller();
  for (int i = 0; i < testbed.num_peers(); ++i) {
    targets.peers.push_back(testbed.peer(i));
  }
  targets.fs = s1->fs.get();
  targets.extra_ncl.push_back(s2->fs->ncl());
  ReconfigEngine engine(targets, testbed.obs());

  // Pick a victim both tenants are resident on (3-wide replication on 5
  // peers guarantees the two ap-maps intersect).
  auto m1 = testbed.controller()->GetApMap("tenant-a", "wal");
  auto m2 = testbed.controller()->GetApMap("tenant-b", "wal");
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  std::string victim_name;
  for (const std::string& p : m1->peers) {
    for (const std::string& q : m2->peers) {
      if (p == q) {
        victim_name = p;
      }
    }
  }
  ASSERT_FALSE(victim_name.empty());
  int victim = std::stoi(victim_name.substr(std::string("peer-").size()));

  engine.Execute(Event(0, ReconfigKind::kPeerDrain, victim));
  EXPECT_EQ(engine.ops_failed(), 0);
  EXPECT_EQ(engine.ops_completed(), 1);
  EXPECT_EQ(s1->fs->ncl()->regions_migrated(), 1);
  EXPECT_EQ(s2->fs->ncl()->regions_migrated(), 1);

  // The drained peer holds neither tenant's regions any more, and both
  // logs stay writable and intact.
  for (const char* app : {"tenant-a", "tenant-b"}) {
    auto apmap = testbed.controller()->GetApMap(app, "wal");
    ASSERT_TRUE(apmap.ok());
    for (const std::string& p : apmap->peers) {
      EXPECT_NE(p, victim_name) << app;
    }
  }
  ASSERT_TRUE((*f1)->Append("a1").ok());
  ASSERT_TRUE((*f2)->Append("b1").ok());
  auto r1 = (*f1)->Read(0, (*f1)->Size());
  auto r2 = (*f2)->Read(0, (*f2)->Size());
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1, "a0a1");
  EXPECT_EQ(*r2, "b0b1");
}

TEST(ReconfigEngineTest, QuiesceRetiresOutstandingOperations) {
  Testbed testbed(Options(6, 3));
  ReconfigTargets targets;
  targets.sim = testbed.sim();
  targets.controller = testbed.controller();
  for (int i = 0; i < testbed.num_peers(); ++i) {
    targets.peers.push_back(testbed.peer(i));
  }
  targets.dfs = testbed.dfs_cluster();
  ReconfigEngine engine(targets);

  // Start a drain and a dfs restart but never let the plan finish them.
  engine.Execute(Event(0, ReconfigKind::kPeerDrain, 2));
  engine.Execute(Event(0, ReconfigKind::kDfsRestart, -1, 1, Seconds(5)));
  EXPECT_TRUE(testbed.peer(2)->draining());
  EXPECT_EQ(testbed.dfs_cluster()->offline_server(), 1);

  engine.Quiesce();
  EXPECT_FALSE(testbed.peer(2)->draining());
  EXPECT_EQ(testbed.dfs_cluster()->offline_server(), -1);
  // The cancelled bring-online never double-fires.
  testbed.sim()->RunUntil(testbed.sim()->Now() + Seconds(6));
  EXPECT_EQ(testbed.dfs_cluster()->offline_server(), -1);
}

}  // namespace
}  // namespace splitft
