// Tests for the disaggregated block device and the local file system on
// top of it (§4.1's CephRBD setting).
#include <gtest/gtest.h>

#include <string>

#include "src/blockstore/block_device.h"
#include "src/blockstore/local_fs.h"
#include "src/common/rng.h"
#include "src/sim/params.h"
#include "src/sim/simulation.h"

namespace splitft {
namespace {

class BlockstoreTest : public ::testing::Test {
 protected:
  BlockstoreTest() : device_(&sim_, &params_, 4096) {}

  Simulation sim_;
  SimParams params_;
  RemoteBlockDevice device_;
};

// ---------------------------------------------------------------- Device --

TEST_F(BlockstoreTest, WriteReadBlock) {
  ASSERT_TRUE(device_.WriteBlock(100, "hello").ok());
  auto data = device_.ReadBlock(100);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->substr(0, 5), "hello");
  EXPECT_EQ(data->size(), kBlockBytes);
}

TEST_F(BlockstoreTest, OutOfRangeRejected) {
  EXPECT_FALSE(device_.WriteBlock(4096, "x").ok());
  EXPECT_FALSE(device_.ReadBlock(9999).ok());
  EXPECT_FALSE(device_.WriteBlock(0, std::string(kBlockBytes + 1, 'x')).ok());
}

TEST_F(BlockstoreTest, UnflushedWritesDieWithTheCache) {
  ASSERT_TRUE(device_.WriteBlock(1, "durable").ok());
  ASSERT_TRUE(device_.Flush().ok());
  ASSERT_TRUE(device_.WriteBlock(1, "volatile").ok());
  device_.DropCache();
  auto data = device_.ReadBlock(1);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->substr(0, 7), "durable");
}

TEST_F(BlockstoreTest, NeverWrittenBlockReadsZeros) {
  auto data = device_.ReadBlock(7);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, std::string(kBlockBytes, '\0'));
}

TEST_F(BlockstoreTest, FlushCostsTheReplicatedBackend) {
  ASSERT_TRUE(device_.WriteBlock(1, "x").ok());
  SimTime before = sim_.Now();
  ASSERT_TRUE(device_.Flush().ok());
  EXPECT_GT(sim_.Now() - before, Millis(1));
  // An empty flush is free.
  before = sim_.Now();
  ASSERT_TRUE(device_.Flush().ok());
  EXPECT_EQ(sim_.Now(), before);
}

// --------------------------------------------------------------- LocalFs --

TEST_F(BlockstoreTest, CreateWriteReadAcrossBlocks) {
  auto fs = LocalFs::Mount(&device_);
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE((*fs)->Create("wal").ok());
  std::string big(3 * kBlockBytes + 123, 'x');
  ASSERT_TRUE((*fs)->Append("wal", big).ok());
  auto size = (*fs)->FileSize("wal");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, big.size());
  auto data = (*fs)->Read("wal", 0, big.size());
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, big);
  // Positional overwrite straddling a block boundary.
  ASSERT_TRUE((*fs)->Write("wal", kBlockBytes - 2, "ABCD").ok());
  data = (*fs)->Read("wal", kBlockBytes - 2, 4);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "ABCD");
}

TEST_F(BlockstoreTest, FsyncMakesDataCrashDurable) {
  {
    auto fs = LocalFs::Mount(&device_);
    ASSERT_TRUE(fs.ok());
    ASSERT_TRUE((*fs)->Create("wal").ok());
    ASSERT_TRUE((*fs)->Append("wal", "synced|").ok());
    ASSERT_TRUE((*fs)->Fsync("wal").ok());
    ASSERT_TRUE((*fs)->Append("wal", "unsynced").ok());
    (*fs)->SimulateCrash();
    EXPECT_FALSE((*fs)->Append("wal", "x").ok());  // must re-mount
  }
  auto fs = LocalFs::Mount(&device_);
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE((*fs)->Exists("wal"));
  auto size = (*fs)->FileSize("wal");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 7u);
  auto data = (*fs)->Read("wal", 0, 100);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "synced|");
}

TEST_F(BlockstoreTest, UnsyncedFileVanishesOnCrash) {
  {
    auto fs = LocalFs::Mount(&device_);
    ASSERT_TRUE(fs.ok());
    ASSERT_TRUE((*fs)->Create("tmp").ok());
    ASSERT_TRUE((*fs)->Append("tmp", "data").ok());
    (*fs)->SimulateCrash();  // no fsync: metadata never reached the device
  }
  auto fs = LocalFs::Mount(&device_);
  ASSERT_TRUE(fs.ok());
  EXPECT_FALSE((*fs)->Exists("tmp"));
}

TEST_F(BlockstoreTest, UnlinkFreesBlocksForReuse) {
  auto fs = LocalFs::Mount(&device_);
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE((*fs)->Create("a").ok());
  ASSERT_TRUE((*fs)->Append("a", std::string(8 * kBlockBytes, 'a')).ok());
  ASSERT_TRUE((*fs)->Fsync("a").ok());
  ASSERT_TRUE((*fs)->Unlink("a").ok());
  EXPECT_FALSE((*fs)->Exists("a"));
  // The freed blocks satisfy a new allocation without growing the device.
  ASSERT_TRUE((*fs)->Create("b").ok());
  ASSERT_TRUE((*fs)->Append("b", std::string(8 * kBlockBytes, 'b')).ok());
  ASSERT_TRUE((*fs)->Fsync("b").ok());
  auto data = (*fs)->Read("b", 0, 8);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "bbbbbbbb");
}

TEST_F(BlockstoreTest, ListFiltersByPrefix) {
  auto fs = LocalFs::Mount(&device_);
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE((*fs)->Create("wal-1").ok());
  ASSERT_TRUE((*fs)->Create("wal-2").ok());
  ASSERT_TRUE((*fs)->Create("sst-1").ok());
  EXPECT_EQ((*fs)->List("wal-").size(), 2u);
  EXPECT_EQ((*fs)->List("").size(), 3u);
}

TEST_F(BlockstoreTest, RandomizedCrashConsistencyFuzz) {
  // Same property as the dfs fuzz: after a crash, content equals the state
  // at the last fsync.
  for (uint64_t seed = 31; seed <= 34; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    RemoteBlockDevice device(&sim_, &params_, 8192);
    auto fs = LocalFs::Mount(&device);
    ASSERT_TRUE(fs.ok());
    ASSERT_TRUE((*fs)->Create("f").ok());
    std::string applied, durable;
    for (int i = 0; i < 80; ++i) {
      int action = static_cast<int>(rng.Uniform(10));
      if (action < 6) {
        std::string data(1 + rng.Uniform(6000),
                         static_cast<char>('a' + rng.Uniform(26)));
        if (rng.Bernoulli(0.3) && !applied.empty()) {
          uint64_t offset = rng.Uniform(applied.size());
          ASSERT_TRUE((*fs)->Write("f", offset, data).ok());
          if (applied.size() < offset + data.size()) {
            applied.resize(offset + data.size(), '\0');
          }
          applied.replace(offset, data.size(), data);
        } else {
          ASSERT_TRUE((*fs)->Append("f", data).ok());
          applied += data;
        }
      } else if (action < 8) {
        ASSERT_TRUE((*fs)->Fsync("f").ok());
        durable = applied;
      } else {
        (*fs)->SimulateCrash();
        fs = LocalFs::Mount(&device);
        ASSERT_TRUE(fs.ok());
        if (durable.empty()) {
          if (!(*fs)->Exists("f")) {
            ASSERT_TRUE((*fs)->Create("f").ok());
          }
          applied.clear();
          auto size = (*fs)->FileSize("f");
          ASSERT_TRUE(size.ok());
          applied.assign(*(*fs)->Read("f", 0, *size));
          durable = applied;
          continue;
        }
        auto content = (*fs)->Read("f", 0, durable.size() + 10000);
        ASSERT_TRUE(content.ok());
        ASSERT_EQ(*content, durable) << "crash consistency violated";
        applied = durable;
      }
    }
  }
}

}  // namespace
}  // namespace splitft
