// Randomized crash-recovery equivalence for the three applications: a
// seeded stream of writes/deletes with crash+recover cycles injected at
// random points must always leave the store equal to an in-memory
// reference (strong and splitft modes promise exactly this; weak mode is
// checked after an explicit flush).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/common/rng.h"
#include "src/harness/testbed.h"

namespace splitft {
namespace {

using Reference = std::map<std::string, std::string>;

std::string FuzzKey(Rng* rng) {
  return "key-" + std::to_string(rng->Uniform(64));
}

std::string FuzzValue(Rng* rng) {
  return std::string(1 + rng->Uniform(120),
                     static_cast<char>('a' + rng->Uniform(26)));
}

void CheckAgainstReference(StorageApp* app, const Reference& reference,
                           int max_checks = 64) {
  int checked = 0;
  for (const auto& [k, v] : reference) {
    auto got = app->Get(k);
    ASSERT_TRUE(got.ok()) << "missing key " << k;
    ASSERT_EQ(*got, v) << "wrong value for " << k;
    if (++checked >= max_checks) {
      break;
    }
  }
  // Spot-check absence too.
  EXPECT_FALSE(app->Get("never-written-key").ok());
}

// ------------------------------------------------------------- KvStore --

void KvEpisode(uint64_t seed, DurabilityMode mode) {
  SCOPED_TRACE("seed=" + std::to_string(seed) + " mode=" +
               std::string(DurabilityModeName(mode)));
  Rng rng(seed);
  Testbed testbed;
  std::string app_id = "kvfuzz-" + std::to_string(seed) + "-" +
                       std::string(DurabilityModeName(mode));
  KvStoreOptions options;
  options.mode = mode;
  options.memtable_bytes = 8 << 10;  // frequent flushes + compactions
  options.l0_compaction_trigger = 3;
  options.wal_capacity = 64 << 10;   // frequent WAL rotations in NCL

  auto server = testbed.MakeServer(
      app_id, {.mode = mode, .ncl_capacity = 1 << 20});
  auto store = testbed.StartKvStore(server.get(), options);
  ASSERT_TRUE(store.ok());
  Reference reference;

  for (int i = 0; i < 250; ++i) {
    int action = static_cast<int>(rng.Uniform(100));
    if (action < 70) {
      std::string k = FuzzKey(&rng);
      std::string v = FuzzValue(&rng);
      ASSERT_TRUE((*store)->Put(k, v).ok());
      reference[k] = v;
    } else if (action < 85) {
      std::string k = FuzzKey(&rng);
      ASSERT_TRUE((*store)->Delete(k).ok());
      reference.erase(k);
    } else if (action < 92) {
      std::string k = FuzzKey(&rng);
      auto got = (*store)->Get(k);
      auto it = reference.find(k);
      if (it == reference.end()) {
        ASSERT_FALSE(got.ok()) << k;
      } else {
        ASSERT_TRUE(got.ok()) << k;
        ASSERT_EQ(*got, it->second);
      }
    } else {
      // Crash + recover.
      if (mode == DurabilityMode::kWeak) {
        server->dfs->BackgroundFlushAll();  // weak promises only this
      }
      testbed.CrashServer(server.get());
      testbed.sim()->RunUntilIdle();
      server = testbed.MakeServer(
          app_id, {.mode = mode, .ncl_capacity = 1 << 20});
      store = testbed.StartKvStore(server.get(), options);
      ASSERT_TRUE(store.ok()) << "recovery failed at op " << i;
      CheckAgainstReference(store->get(), reference);
    }
  }
  CheckAgainstReference(store->get(), reference, 1000);
}

class KvFuzz
    : public ::testing::TestWithParam<std::tuple<uint64_t, DurabilityMode>> {};

TEST_P(KvFuzz, CrashRecoveryMatchesReference) {
  KvEpisode(std::get<0>(GetParam()), std::get<1>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    Episodes, KvFuzz,
    ::testing::Combine(::testing::Values(101, 202, 303, 404),
                       ::testing::Values(DurabilityMode::kStrong,
                                         DurabilityMode::kSplitFt,
                                         DurabilityMode::kWeak)),
    [](const auto& param_info) {
      return "seed" + std::to_string(std::get<0>(param_info.param)) + "_" +
             std::string(DurabilityModeName(std::get<1>(param_info.param)));
    });

// --------------------------------------------------------------- Redis --

void RedisEpisode(uint64_t seed, DurabilityMode mode) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  Rng rng(seed);
  Testbed testbed;
  std::string app_id = "redisfuzz-" + std::to_string(seed) + "-" +
                       std::string(DurabilityModeName(mode));
  RedisOptions options;
  options.mode = mode;
  options.aof_rewrite_bytes = 16 << 10;  // frequent rewrites
  options.aof_capacity = 256 << 10;

  auto server = testbed.MakeServer(
      app_id, {.mode = mode, .ncl_capacity = 1 << 20});
  auto redis = testbed.StartRedis(server.get(), options);
  ASSERT_TRUE(redis.ok());
  Reference strings;
  std::map<std::string, std::map<std::string, std::string>> hashes;

  for (int i = 0; i < 250; ++i) {
    int action = static_cast<int>(rng.Uniform(100));
    if (action < 50) {
      std::string k = FuzzKey(&rng);
      std::string v = FuzzValue(&rng);
      ASSERT_TRUE((*redis)->Put(k, v).ok());
      strings[k] = v;
      hashes.erase(k);
    } else if (action < 65) {
      std::string k = "hash-" + std::to_string(rng.Uniform(8));
      std::string f = "field-" + std::to_string(rng.Uniform(8));
      std::string v = FuzzValue(&rng);
      ASSERT_TRUE((*redis)->HSet(k, f, v).ok());
      hashes[k][f] = v;
    } else if (action < 78) {
      std::string k = FuzzKey(&rng);
      ASSERT_TRUE((*redis)->Del(k).ok());
      strings.erase(k);
      hashes.erase(k);
    } else if (action < 90) {
      std::string k = FuzzKey(&rng);
      auto got = (*redis)->Get(k);
      auto it = strings.find(k);
      if (it == strings.end()) {
        ASSERT_FALSE(got.ok());
      } else {
        ASSERT_TRUE(got.ok());
        ASSERT_EQ(*got, it->second);
      }
    } else {
      if (mode == DurabilityMode::kWeak) {
        server->dfs->BackgroundFlushAll();
      }
      testbed.CrashServer(server.get());
      testbed.sim()->RunUntilIdle();
      server = testbed.MakeServer(
          app_id, {.mode = mode, .ncl_capacity = 1 << 20});
      redis = testbed.StartRedis(server.get(), options);
      ASSERT_TRUE(redis.ok()) << "recovery failed at op " << i;
      CheckAgainstReference(redis->get(), strings);
      for (const auto& [k, fields] : hashes) {
        for (const auto& [f, v] : fields) {
          auto got = (*redis)->HGet(k, f);
          ASSERT_TRUE(got.ok()) << k << "." << f;
          ASSERT_EQ(*got, v);
        }
      }
    }
  }
  CheckAgainstReference(redis->get(), strings, 1000);
}

class RedisFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RedisFuzz, SplitFtCrashRecoveryMatchesReference) {
  RedisEpisode(GetParam(), DurabilityMode::kSplitFt);
}

TEST_P(RedisFuzz, StrongCrashRecoveryMatchesReference) {
  RedisEpisode(GetParam(), DurabilityMode::kStrong);
}

INSTANTIATE_TEST_SUITE_P(Episodes, RedisFuzz,
                         ::testing::Values(111, 222, 333));

// -------------------------------------------------------------- SQLite --

void SqliteEpisode(uint64_t seed, DurabilityMode mode) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  Rng rng(seed);
  Testbed testbed;
  std::string app_id = "sqlfuzz-" + std::to_string(seed) + "-" +
                       std::string(DurabilityModeName(mode));
  SqliteLiteOptions options;
  options.mode = mode;
  options.wal_capacity = 16 << 10;  // wraps often: exercises the circular log

  auto server = testbed.MakeServer(
      app_id, {.mode = mode, .ncl_capacity = 1 << 20});
  auto db = testbed.StartSqlite(server.get(), options);
  ASSERT_TRUE(db.ok());
  Reference reference;

  for (int i = 0; i < 250; ++i) {
    int action = static_cast<int>(rng.Uniform(100));
    if (action < 60) {
      std::string k = FuzzKey(&rng);
      std::string v = FuzzValue(&rng);
      ASSERT_TRUE((*db)->Put(k, v).ok());
      reference[k] = v;
    } else if (action < 80) {
      // Multi-row transaction.
      std::vector<KvWrite> txn;
      for (uint64_t j = 0; j < 1 + rng.Uniform(4); ++j) {
        txn.push_back(KvWrite{FuzzKey(&rng), FuzzValue(&rng)});
      }
      ASSERT_TRUE((*db)->ExecTransaction(txn).ok());
      for (const KvWrite& w : txn) {
        reference[w.key] = w.value;
      }
    } else if (action < 90) {
      std::string k = FuzzKey(&rng);
      auto got = (*db)->Get(k);
      auto it = reference.find(k);
      if (it == reference.end()) {
        ASSERT_FALSE(got.ok());
      } else {
        ASSERT_TRUE(got.ok());
        ASSERT_EQ(*got, it->second);
      }
    } else {
      if (mode == DurabilityMode::kWeak) {
        server->dfs->BackgroundFlushAll();
      }
      testbed.CrashServer(server.get());
      testbed.sim()->RunUntilIdle();
      server = testbed.MakeServer(
          app_id, {.mode = mode, .ncl_capacity = 1 << 20});
      db = testbed.StartSqlite(server.get(), options);
      ASSERT_TRUE(db.ok()) << "recovery failed at op " << i;
      CheckAgainstReference(db->get(), reference);
    }
  }
  CheckAgainstReference(db->get(), reference, 1000);
}

class SqliteFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqliteFuzz, SplitFtCrashRecoveryMatchesReference) {
  SqliteEpisode(GetParam(), DurabilityMode::kSplitFt);
}

TEST_P(SqliteFuzz, StrongCrashRecoveryMatchesReference) {
  SqliteEpisode(GetParam(), DurabilityMode::kStrong);
}

INSTANTIATE_TEST_SUITE_P(Episodes, SqliteFuzz,
                         ::testing::Values(121, 242, 363));

}  // namespace
}  // namespace splitft
