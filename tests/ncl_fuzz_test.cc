// Property-based fuzzing of the NCL layer: seeded random schedules of
// appends, overwrites, truncates, peer crashes/restarts/revocations, and
// application crash/recover cycles, checked against a reference model of
// the file contents. As long as failures stay within the budget between
// operations (replacements keep the quorum alive), every acknowledged
// operation must be recovered exactly.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/controller/controller.h"
#include "src/ncl/ncl_client.h"
#include "src/ncl/peer.h"
#include "src/ncl/peer_directory.h"
#include "src/rdma/fabric.h"
#include "src/sim/params.h"
#include "src/sim/simulation.h"

namespace splitft {
namespace {

constexpr uint64_t kCapacity = 32 << 10;

class NclFuzzFixture {
 public:
  explicit NclFuzzFixture(int num_peers)
      : fabric_(&sim_, &params_), controller_(&sim_, &params_) {
    app_node_ = fabric_.AddNode("app");
    for (int i = 0; i < num_peers; ++i) {
      peers_.push_back(std::make_unique<LogPeer>(
          "p" + std::to_string(i), &fabric_, &controller_, 64ull << 20));
      EXPECT_TRUE(peers_.back()->Start().ok());
      directory_.Register(peers_.back().get());
    }
  }

  std::unique_ptr<NclClient> MakeClient() {
    NclConfig config;
    config.app_id = "fuzz-app";
    config.default_capacity = kCapacity;
    return std::make_unique<NclClient>(config, &fabric_, &controller_,
                                       &directory_, app_node_);
  }

  Simulation sim_;
  SimParams params_;
  Fabric fabric_;
  Controller controller_;
  PeerDirectory directory_;
  std::vector<std::unique_ptr<LogPeer>> peers_;
  NodeId app_node_;
};

// Reference model: a plain string mirroring what the file should contain.
struct Reference {
  std::string content;

  void Append(std::string_view data) { content += data; }
  void Write(uint64_t offset, std::string_view data) {
    if (content.size() < offset + data.size()) {
      content.resize(offset + data.size(), '\0');
    }
    content.replace(offset, data.size(), data);
  }
  void Truncate() { content.clear(); }
};

std::string RandomPayload(Rng* rng) {
  size_t len = 1 + rng->Uniform(200);
  std::string out(len, '\0');
  for (char& c : out) {
    c = static_cast<char>('a' + rng->Uniform(26));
  }
  return out;
}

// One full fuzz episode for a given seed. Peer crashes are throttled so a
// majority always survives between operations (replacement restores the
// budget); app crashes trigger recovery and an exact content comparison.
void RunEpisode(uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  Rng rng(seed);
  NclFuzzFixture fixture(5 + static_cast<int>(rng.Uniform(3)));

  auto client = fixture.MakeClient();
  auto file = client->Create("/fuzz-log");
  ASSERT_TRUE(file.ok());
  Reference reference;
  int crashes_since_op = 0;

  const int ops = 60;
  for (int i = 0; i < ops; ++i) {
    int action = static_cast<int>(rng.Uniform(100));
    if (action < 45) {
      // Append (bounded by capacity).
      std::string payload = RandomPayload(&rng);
      if (reference.content.size() + payload.size() > kCapacity) {
        continue;
      }
      ASSERT_TRUE((*file)->Append(payload).ok());
      reference.Append(payload);
      crashes_since_op = 0;
    } else if (action < 65) {
      // Positional overwrite (circular-log style).
      if (reference.content.empty()) {
        continue;
      }
      std::string payload = RandomPayload(&rng);
      uint64_t offset = rng.Uniform(reference.content.size());
      if (offset + payload.size() > kCapacity) {
        continue;
      }
      ASSERT_TRUE((*file)->Write(offset, payload).ok());
      reference.Write(offset, payload);
      crashes_since_op = 0;
    } else if (action < 72) {
      ASSERT_TRUE((*file)->Truncate().ok());
      reference.Truncate();
      crashes_since_op = 0;
    } else if (action < 82 && crashes_since_op == 0) {
      // Fail one currently-assigned peer (crash or revocation); the next
      // operation will detect it and replace it. Keep enough peers alive
      // that a replacement is always possible — otherwise unavailability
      // is the *correct* outcome and exactness cannot be asserted.
      int alive = 0;
      for (const auto& peer : fixture.peers_) {
        if (peer->alive()) {
          alive++;
        }
      }
      const auto& names = (*file)->peer_names();
      std::string victim = names[rng.Uniform(names.size())];
      LogPeer* peer = fixture.directory_.Lookup(victim);
      if (peer != nullptr && peer->alive()) {
        if (rng.Bernoulli(0.3)) {
          // NotFound when the peer never held the region is expected.
          DiscardStatus(peer->Revoke("fuzz-app", "/fuzz-log"),
                        "fuzz revoke");
          crashes_since_op = 1;
        } else if (alive > 4 || rng.Bernoulli(0.5)) {
          peer->Crash();
          // Restart unconditionally when the pool is running low.
          if (alive <= 4 || rng.Bernoulli(0.5)) {
            ASSERT_TRUE(peer->Restart().ok());
          }
          crashes_since_op = 1;
        }
      }
    } else if (action < 90) {
      // App crash + recovery: the moment of truth.
      file->reset();
      fixture.sim_.RunUntilIdle();
      client = fixture.MakeClient();
      file = client->Recover("/fuzz-log");
      ASSERT_TRUE(file.ok()) << "recovery failed at op " << i;
      ASSERT_EQ((*file)->size(), reference.content.size());
      auto recovered = (*file)->Read(0, (*file)->size());
      ASSERT_TRUE(recovered.ok());
      ASSERT_EQ(*recovered, reference.content)
          << "content mismatch after recovery at op " << i;
      crashes_since_op = 0;
    } else {
      // Let in-flight traffic and background events drain.
      fixture.sim_.RunUntil(fixture.sim_.Now() + Millis(rng.Uniform(50)));
    }
  }

  // Final recovery must reproduce the reference exactly.
  file->reset();
  fixture.sim_.RunUntilIdle();
  client = fixture.MakeClient();
  file = client->Recover("/fuzz-log");
  ASSERT_TRUE(file.ok());
  auto recovered = (*file)->Read(0, (*file)->size());
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*recovered, reference.content);

  // And the file can be deleted cleanly, freeing all regions.
  ASSERT_TRUE((*file)->Delete().ok());
  EXPECT_FALSE(client->Exists("/fuzz-log"));
}

class NclFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NclFuzz, RandomScheduleRecoversExactly) { RunEpisode(GetParam()); }

INSTANTIATE_TEST_SUITE_P(Seeds, NclFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
                                           144, 233, 377, 610, 987));

// Diff catch-up must satisfy the same property.
TEST(NclFuzzDiffCatchup, RandomScheduleRecoversExactly) {
  for (uint64_t seed : {401ull, 402ull, 403ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    NclFuzzFixture fixture(5);
    NclConfig config;
    config.app_id = "fuzz-app";
    config.default_capacity = kCapacity;
    config.diff_catchup = true;
    auto client = std::make_unique<NclClient>(config, &fixture.fabric_,
                                              &fixture.controller_,
                                              &fixture.directory_,
                                              fixture.app_node_);
    auto file = client->Create("/fuzz-log");
    ASSERT_TRUE(file.ok());
    Reference reference;
    for (int i = 0; i < 30; ++i) {
      std::string payload = RandomPayload(&rng);
      if (reference.content.size() + payload.size() > kCapacity) {
        break;
      }
      ASSERT_TRUE((*file)->Append(payload).ok());
      reference.Append(payload);
      if (i % 7 == 6) {
        file->reset();
        fixture.sim_.RunUntilIdle();
        client = std::make_unique<NclClient>(config, &fixture.fabric_,
                                             &fixture.controller_,
                                             &fixture.directory_,
                                             fixture.app_node_);
        file = client->Recover("/fuzz-log");
        ASSERT_TRUE(file.ok());
        auto recovered = (*file)->Read(0, (*file)->size());
        ASSERT_TRUE(recovered.ok());
        ASSERT_EQ(*recovered, reference.content);
      }
    }
  }
}

}  // namespace
}  // namespace splitft
