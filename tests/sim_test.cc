#include <gtest/gtest.h>

#include <vector>

#include "src/sim/params.h"
#include "src/sim/simulation.h"

namespace splitft {
namespace {

TEST(SimulationTest, ClockStartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.Now(), 0);
}

TEST(SimulationTest, RunOneAdvancesClock) {
  Simulation sim;
  bool ran = false;
  sim.Schedule(Micros(5), [&] { ran = true; });
  EXPECT_TRUE(sim.RunOne());
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.Now(), Micros(5));
  EXPECT_FALSE(sim.RunOne());
}

TEST(SimulationTest, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(Micros(30), [&] { order.push_back(3); });
  sim.Schedule(Micros(10), [&] { order.push_back(1); });
  sim.Schedule(Micros(20), [&] { order.push_back(2); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulationTest, SameTimeEventsRunFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(Micros(10), [&order, i] { order.push_back(i); });
  }
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, NestedScheduling) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(Micros(1), [&] {
    fired++;
    sim.Schedule(Micros(1), [&] { fired++; });
  });
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), Micros(2));
}

TEST(SimulationTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(Micros(10), [&] { fired++; });
  sim.Schedule(Micros(50), [&] { fired++; });
  sim.RunUntil(Micros(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), Micros(20));
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, RunUntilPredicate) {
  Simulation sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.Schedule(Micros(i), [&] { count++; });
  }
  EXPECT_TRUE(sim.RunUntilPredicate([&] { return count == 3; }));
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.Now(), Micros(3));
  EXPECT_FALSE(sim.RunUntilPredicate([&] { return count == 100; }));
  EXPECT_EQ(count, 10);
}

TEST(SimulationTest, AdvanceIsMonotonic) {
  Simulation sim;
  sim.Advance(Micros(100));
  EXPECT_EQ(sim.Now(), Micros(100));
  sim.AdvanceTo(Micros(50));  // no-op: never move backwards
  EXPECT_EQ(sim.Now(), Micros(100));
}

TEST(SimulationTest, EventBeforeAdvancedClockRunsAtCurrentTime) {
  Simulation sim;
  SimTime observed = -1;
  sim.Schedule(Micros(10), [&] { observed = sim.Now(); });
  sim.Advance(Micros(100));  // actor did synchronous CPU work past the event
  sim.RunUntilIdle();
  EXPECT_EQ(observed, Micros(100));
}

TEST(SimParamsTest, DfsSmallWriteMatchesPaperFig1d) {
  SimParams params;
  // 512 B synchronous write ~ 2.1 ms  =>  ~249 KB/s as in Fig 1(d).
  SimTime lat = params.DfsSyncWriteLatency(512);
  double kb_per_s = 512.0 / (static_cast<double>(lat) / 1e9) / 1000.0;
  EXPECT_GT(kb_per_s, 150.0);
  EXPECT_LT(kb_per_s, 350.0);
}

TEST(SimParamsTest, LatencyHierarchyHolds) {
  SimParams params;
  // buffered write < RDMA write < dfs sync write, each by a wide margin.
  SimTime buffered = params.DfsBufferedWriteLatency(128);
  SimTime rdma = params.RdmaWriteLatency(128);
  SimTime sync = params.DfsSyncWriteLatency(128);
  EXPECT_LT(buffered, rdma);
  EXPECT_LT(rdma * 50, sync);
}

TEST(SimParamsTest, LargeWritesAreBandwidthBound) {
  SimParams params;
  SimTime small = params.DfsSyncWriteLatency(512);
  SimTime large = params.DfsSyncWriteLatency(64ull * 1024 * 1024);
  double tput_small = 512.0 / static_cast<double>(small);
  double tput_large =
      static_cast<double>(64ull * 1024 * 1024) / static_cast<double>(large);
  // Roughly three orders of magnitude difference (paper: Fig 1d).
  EXPECT_GT(tput_large / tput_small, 500.0);
}

TEST(SimParamsTest, MrRegistrationCostMatchesTable3Scale) {
  SimParams params;
  // Table 3: connecting + registering a 60 MB region ~ 50-65 ms.
  SimTime t = params.MrRegisterLatency(60ull * 1024 * 1024) +
              params.rdma.connect_latency;
  EXPECT_GT(t, Millis(20));
  EXPECT_LT(t, Millis(120));
}

}  // namespace
}  // namespace splitft
