#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/params.h"
#include "src/sim/reference_scheduler.h"
#include "src/sim/simulation.h"

namespace splitft {
namespace {

TEST(SimulationTest, ClockStartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.Now(), 0);
}

TEST(SimulationTest, RunOneAdvancesClock) {
  Simulation sim;
  bool ran = false;
  sim.Schedule(Micros(5), [&] { ran = true; });
  EXPECT_TRUE(sim.RunOne());
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.Now(), Micros(5));
  EXPECT_FALSE(sim.RunOne());
}

TEST(SimulationTest, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(Micros(30), [&] { order.push_back(3); });
  sim.Schedule(Micros(10), [&] { order.push_back(1); });
  sim.Schedule(Micros(20), [&] { order.push_back(2); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulationTest, SameTimeEventsRunFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(Micros(10), [&order, i] { order.push_back(i); });
  }
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, NestedScheduling) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(Micros(1), [&] {
    fired++;
    sim.Schedule(Micros(1), [&] { fired++; });
  });
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), Micros(2));
}

TEST(SimulationTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(Micros(10), [&] { fired++; });
  sim.Schedule(Micros(50), [&] { fired++; });
  sim.RunUntil(Micros(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), Micros(20));
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, RunUntilPredicate) {
  Simulation sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.Schedule(Micros(i), [&] { count++; });
  }
  EXPECT_TRUE(sim.RunUntilPredicate([&] { return count == 3; }));
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.Now(), Micros(3));
  EXPECT_FALSE(sim.RunUntilPredicate([&] { return count == 100; }));
  EXPECT_EQ(count, 10);
}

TEST(SimulationTest, AdvanceIsMonotonic) {
  Simulation sim;
  sim.Advance(Micros(100));
  EXPECT_EQ(sim.Now(), Micros(100));
  sim.AdvanceTo(Micros(50));  // no-op: never move backwards
  EXPECT_EQ(sim.Now(), Micros(100));
}

TEST(SimulationTest, EventBeforeAdvancedClockRunsAtCurrentTime) {
  Simulation sim;
  SimTime observed = -1;
  sim.Schedule(Micros(10), [&] { observed = sim.Now(); });
  sim.Advance(Micros(100));  // actor did synchronous CPU work past the event
  sim.RunUntilIdle();
  EXPECT_EQ(observed, Micros(100));
}

TEST(SimParamsTest, DfsSmallWriteMatchesPaperFig1d) {
  SimParams params;
  // 512 B synchronous write ~ 2.1 ms  =>  ~249 KB/s as in Fig 1(d).
  SimTime lat = params.DfsSyncWriteLatency(512);
  double kb_per_s = 512.0 / (static_cast<double>(lat) / 1e9) / 1000.0;
  EXPECT_GT(kb_per_s, 150.0);
  EXPECT_LT(kb_per_s, 350.0);
}

TEST(SimParamsTest, LatencyHierarchyHolds) {
  SimParams params;
  // buffered write < RDMA write < dfs sync write, each by a wide margin.
  SimTime buffered = params.DfsBufferedWriteLatency(128);
  SimTime rdma = params.RdmaWriteLatency(128);
  SimTime sync = params.DfsSyncWriteLatency(128);
  EXPECT_LT(buffered, rdma);
  EXPECT_LT(rdma * 50, sync);
}

TEST(SimParamsTest, LargeWritesAreBandwidthBound) {
  SimParams params;
  SimTime small = params.DfsSyncWriteLatency(512);
  SimTime large = params.DfsSyncWriteLatency(64ull * 1024 * 1024);
  double tput_small = 512.0 / static_cast<double>(small);
  double tput_large =
      static_cast<double>(64ull * 1024 * 1024) / static_cast<double>(large);
  // Roughly three orders of magnitude difference (paper: Fig 1d).
  EXPECT_GT(tput_large / tput_small, 500.0);
}

TEST(SimParamsTest, MrRegistrationCostMatchesTable3Scale) {
  SimParams params;
  // Table 3: connecting + registering a 60 MB region ~ 50-65 ms.
  SimTime t = params.MrRegisterLatency(60ull * 1024 * 1024) +
              params.rdma.connect_latency;
  EXPECT_GT(t, Millis(20));
  EXPECT_LT(t, Millis(120));
}

// ---------------------------------------------------------------------------
// Scheduler-equivalence suite: the calendar-queue core must fire the same
// events at the same timestamps in the same order as the seed binary-heap
// scheduler (src/sim/reference_scheduler.h), for any interleaving of
// Schedule / ScheduleAt / ScheduleCancelableAt / Cancel / AdvanceTo /
// RunOne / RunUntil. Each fired event logs (id, fire time); the two logs
// must match exactly.
// ---------------------------------------------------------------------------

using sim_internal::EventQueue;

// One recorded firing: (event id, virtual time it ran at).
using FireLog = std::vector<std::pair<uint64_t, SimTime>>;

// Replays an identical randomized workload against a scheduler `S` (the
// calendar queue or the reference heap). Determinism of the workload
// itself comes from the seeded Rng.
template <typename S>
FireLog ReplayWorkload(uint64_t seed, int ops) {
  S sched;
  FireLog log;
  Rng rng(seed);
  uint64_t next_id = 1;
  std::vector<uint64_t> cancel_tokens;

  // Delay menu biased toward calendar-queue edge cases: same-tick FIFO
  // runs, exact bucket boundaries, the last in-horizon bucket, and
  // beyond-horizon overflow inserts.
  const SimTime kDelays[] = {
      0,
      1,
      EventQueue::kBucketWidth - 1,
      EventQueue::kBucketWidth,
      EventQueue::kBucketWidth + 1,
      7777,
      EventQueue::kHorizon - EventQueue::kBucketWidth,
      EventQueue::kHorizon - 1,
      EventQueue::kHorizon,
      EventQueue::kHorizon + 12345,
  };
  constexpr size_t kNumDelays = sizeof(kDelays) / sizeof(kDelays[0]);

  for (int i = 0; i < ops; ++i) {
    uint64_t pick = rng.Uniform(100);
    SimTime delay = kDelays[rng.Uniform(kNumDelays)] + rng.Uniform(3);
    uint64_t id = next_id++;
    auto fire = [&log, &sched, id] { log.emplace_back(id, sched.Now()); };
    if (pick < 40) {
      sched.Schedule(delay, fire);
    } else if (pick < 55) {
      // Absolute schedules, including times already in the past (they must
      // clamp to Now() in both implementations).
      SimTime when = static_cast<SimTime>(
          rng.Uniform(static_cast<uint64_t>(sched.Now() + delay + 1)));
      sched.ScheduleAt(when, fire);
    } else if (pick < 75) {
      cancel_tokens.push_back(sched.ScheduleCancelableAt(
          sched.Now() + delay, fire));
    } else if (pick < 85 && !cancel_tokens.empty()) {
      // Cancel a random outstanding token; sometimes twice (idempotent),
      // sometimes one that already fired (no-op).
      size_t at = rng.Uniform(cancel_tokens.size());
      sched.Cancel(cancel_tokens[at]);
      if (rng.Uniform(4) == 0) {
        sched.Cancel(cancel_tokens[at]);
      }
      cancel_tokens.erase(cancel_tokens.begin() + static_cast<long>(at));
    } else if (pick < 90) {
      // Synchronous CPU time: jump the clock, sometimes across several
      // bucket boundaries or past the whole wheel horizon.
      SimTime jump = rng.Uniform(4) == 0
                         ? EventQueue::kHorizon + 5000
                         : static_cast<SimTime>(
                               rng.Uniform(4 * EventQueue::kBucketWidth));
      sched.Advance(jump);
    } else if (pick < 96) {
      // Run until k live events fired (or idle). Counting RunOne calls
      // directly would not be comparable: the reference scheduler burns
      // RunOne calls on cancelled events' dead wrappers, the wheel never
      // pops cancelled events at all.
      size_t target = log.size() + rng.Uniform(8);
      while (log.size() < target && sched.RunOne()) {
      }
    } else {
      sched.RunUntil(sched.Now() + static_cast<SimTime>(rng.Uniform(
                                       2 * EventQueue::kBucketWidth)));
    }
  }
  sched.RunUntilIdle();
  return log;
}

TEST(SchedulerEquivalenceTest, RandomizedWorkloadMatchesReferenceHeap) {
  for (uint64_t seed : {1ull, 2ull, 3ull, 0xdecafbadull, 0x5174f7ull}) {
    FireLog wheel = ReplayWorkload<Simulation>(seed, 4000);
    FireLog heap = ReplayWorkload<ReferenceScheduler>(seed, 4000);
    ASSERT_EQ(wheel.size(), heap.size()) << "seed " << seed;
    for (size_t i = 0; i < wheel.size(); ++i) {
      ASSERT_EQ(wheel[i].first, heap[i].first)
          << "fire order diverged at event " << i << " (seed " << seed << ")";
      ASSERT_EQ(wheel[i].second, heap[i].second)
          << "fire time diverged at event " << i << " (seed " << seed << ")";
    }
  }
}

TEST(SchedulerEquivalenceTest, SameTimestampFifoAcrossAllTiers) {
  // Events landing on one timestamp from different insert paths (ring,
  // current-bucket incursion, overflow that migrates in) must still run in
  // scheduling order.
  Simulation sim;
  std::vector<int> order;
  SimTime t = EventQueue::kHorizon + 3 * EventQueue::kBucketWidth + 17;
  sim.ScheduleAt(t, [&] { order.push_back(0); });  // overflow at insert
  sim.ScheduleAt(t - 1, [&] { order.push_back(1); });
  sim.ScheduleAt(t, [&] { order.push_back(2); });
  sim.ScheduleAt(t + 1, [&] { order.push_back(3); });
  // Drain into the tick itself, then add same-tick events while firing.
  sim.RunUntil(t - 1);
  sim.ScheduleAt(t, [&] { order.push_back(4); });  // ring insert
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 0, 2, 4, 3}));
}

// Regression for the seed's token-table leak (ISSUE 8): tokens cancelled
// after their event already fired — or left dangling when the queue drains
// — must not accumulate anywhere. The generation-stamped arena has no
// token table at all; this asserts the arena itself also stays bounded
// across a long churn (no unbounded growth in any scheduler structure).
TEST(SchedulerEquivalenceTest, CancelledTokensDoNotAccumulate) {
  Simulation sim;
  std::vector<uint64_t> fired_tokens;
  Simulation::SchedulerStats warm{};
  for (int round = 0; round < 20000; ++round) {
    uint64_t tok = sim.ScheduleCancelableAt(sim.Now() + 100, [] {});
    if (round % 2 == 0) {
      sim.Cancel(tok);
    } else {
      fired_tokens.push_back(tok);
    }
    sim.RunUntilIdle();
    // Cancel-after-drain: the seed leaked one live_tokens_ entry per loop
    // here (the wrapper already ran or was erased, the token never).
    sim.Cancel(tok);
    if (round == 100) {
      warm = sim.scheduler_stats();
    }
  }
  Simulation::SchedulerStats end = sim.scheduler_stats();
  EXPECT_EQ(end.pending, 0u);
  // Steady state reached by round 100 must not grow afterwards: same slab
  // count, same capacity, everything back on the freelist.
  EXPECT_EQ(end.arena_slabs, warm.arena_slabs);
  EXPECT_EQ(end.arena_capacity, warm.arena_capacity);
  EXPECT_EQ(end.arena_free, end.arena_capacity);
  // Stale tokens from long ago must stay dead even as slots recycle.
  for (uint64_t tok : fired_tokens) {
    sim.Cancel(tok);  // must be a no-op, not touch a recycled slot's event
  }
  sim.Schedule(5, [] {});
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunUntilIdle();
  EXPECT_EQ(sim.pending_events(), 0u);
}

// Demonstrates the growth this design fixed. In the seed scheduler, Cancel
// only erases the token — the dead wrapper event stays queued until its
// timestamp, so a campaign cancelling far-future timers (heal-before-expiry)
// drags an ever-growing tail of dead events. The wheel reclaims the slot at
// Cancel time: pending count drops immediately and the arena stays bounded.
TEST(SchedulerEquivalenceTest, CancelReclaimsImmediatelyUnlikeReference) {
  ReferenceScheduler heap;
  Simulation wheel;
  for (int i = 0; i < 1000; ++i) {
    heap.Cancel(heap.ScheduleCancelableAt(Seconds(10), [] {}));
    wheel.Cancel(wheel.ScheduleCancelableAt(Seconds(10), [] {}));
  }
  EXPECT_EQ(heap.pending_events(), 1000u);  // dead wrappers linger for 10s
  EXPECT_EQ(wheel.pending_events(), 0u);    // reclaimed at Cancel time
  Simulation::SchedulerStats stats = wheel.scheduler_stats();
  EXPECT_EQ(stats.arena_free, stats.arena_capacity);
}

// Zero-allocation contract: steady-state Schedule→fire→recycle must not
// grow the arena once warm, and small captures must stay inline.
TEST(SchedulerEquivalenceTest, SteadyStateChurnAllocatesNoNewSlabs) {
  Simulation sim;
  struct Capture {
    uint64_t a, b, c;  // 24 bytes — over std::function's 16B SBO, inline here
  };
  Capture cap{1, 2, 3};
  long fired = 0;
  for (int i = 0; i < 64; ++i) {
    sim.Schedule(i, [cap, &fired] { fired += static_cast<long>(cap.a); });
  }
  sim.RunUntilIdle();
  Simulation::SchedulerStats warm = sim.scheduler_stats();
  for (int round = 0; round < 50000; ++round) {
    for (int i = 0; i < 64; ++i) {
      sim.Schedule(i % 7, [cap, &fired] { fired += static_cast<long>(cap.a); });
    }
    sim.RunUntilIdle();
  }
  Simulation::SchedulerStats end = sim.scheduler_stats();
  EXPECT_EQ(end.arena_slabs, warm.arena_slabs);
  EXPECT_EQ(end.arena_capacity, warm.arena_capacity);
  EXPECT_EQ(end.heap_callables, 0u);
  EXPECT_GT(fired, 0);
}

}  // namespace
}  // namespace splitft
