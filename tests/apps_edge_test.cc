// Edge-case and property tests: KvStore tombstones, sstable format
// boundaries and corruption detection, dfs crash-consistency fuzzing, and
// fine-grained-file random interleavings against a reference model.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "src/apps/kvstore/kv_store.h"
#include "src/apps/kvstore/sstable.h"
#include "src/common/rng.h"
#include "src/controller/controller.h"
#include "src/dfs/dfs.h"
#include "src/ncl/peer.h"
#include "src/rdma/fabric.h"
#include "src/splitft/split_fs.h"

namespace splitft {
namespace {

class EdgeTest : public ::testing::Test {
 protected:
  EdgeTest()
      : fabric_(&sim_, &params_),
        controller_(&sim_, &params_),
        cluster_(&sim_, &params_),
        dfs_(&cluster_, "app-server") {
    app_node_ = fabric_.AddNode("app-server");
    for (int i = 0; i < 4; ++i) {
      auto peer = std::make_unique<LogPeer>("p" + std::to_string(i), &fabric_,
                                            &controller_, 512ull << 20);
      EXPECT_TRUE(peer->Start().ok());
      directory_.Register(peer.get());
      peers_.push_back(std::move(peer));
    }
  }

  std::unique_ptr<SplitFs> MakeFs(const std::string& app) {
    NclConfig config;
    config.app_id = app;
    config.default_capacity = 8 << 20;
    return std::make_unique<SplitFs>(config, &dfs_, &fabric_, &controller_,
                                     &directory_, app_node_);
  }

  Simulation sim_;
  SimParams params_;
  Fabric fabric_;
  Controller controller_;
  DfsCluster cluster_;
  DfsClient dfs_;
  PeerDirectory directory_;
  std::vector<std::unique_ptr<LogPeer>> peers_;
  NodeId app_node_;
};

// ------------------------------------------------------- KvStore deletes --

TEST_F(EdgeTest, DeleteHidesKeyEverywhere) {
  auto fs = MakeFs("kv-del");
  KvStoreOptions options;
  options.mode = DurabilityMode::kSplitFt;
  options.memtable_bytes = 4 << 10;
  auto store = KvStore::Open(fs.get(), &sim_, &params_, options);
  ASSERT_TRUE(store.ok());

  // Delete from the memtable.
  ASSERT_TRUE((*store)->Put("fresh", "v").ok());
  ASSERT_TRUE((*store)->Delete("fresh").ok());
  EXPECT_EQ((*store)->Get("fresh").status().code(), StatusCode::kNotFound);

  // Delete a key that lives in an sstable: the tombstone must shadow it.
  ASSERT_TRUE((*store)->Put("cold", "v").ok());
  ASSERT_TRUE((*store)->FlushMemtable().ok());
  ASSERT_TRUE((*store)->Delete("cold").ok());
  EXPECT_EQ((*store)->Get("cold").status().code(), StatusCode::kNotFound);
  // Even after the tombstone itself is flushed.
  ASSERT_TRUE((*store)->FlushMemtable().ok());
  EXPECT_EQ((*store)->Get("cold").status().code(), StatusCode::kNotFound);
}

TEST_F(EdgeTest, DeleteSurvivesCrashRecovery) {
  KvStoreOptions options;
  options.mode = DurabilityMode::kSplitFt;
  {
    auto fs = MakeFs("kv-del-rec");
    auto store = KvStore::Open(fs.get(), &sim_, &params_, options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("gone", "v").ok());
    ASSERT_TRUE((*store)->Put("kept", "v").ok());
    ASSERT_TRUE((*store)->Delete("gone").ok());
    fs->SimulateCrash();
  }
  sim_.RunUntilIdle();
  auto fs = MakeFs("kv-del-rec");
  auto store = KvStore::Open(fs.get(), &sim_, &params_, options);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->Get("gone").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(*(*store)->Get("kept"), "v");
}

TEST_F(EdgeTest, CompactionDropsTombstones) {
  auto fs = MakeFs("kv-del-compact");
  KvStoreOptions options;
  options.mode = DurabilityMode::kSplitFt;
  options.memtable_bytes = 2 << 10;
  options.l0_compaction_trigger = 2;
  auto store = KvStore::Open(fs.get(), &sim_, &params_, options);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*store)->Put("k" + std::to_string(i), "v").ok());
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*store)->Delete("k" + std::to_string(i)).ok());
  }
  // Push everything through compaction to the bottom level.
  ASSERT_TRUE((*store)->FlushMemtable().ok());
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE((*store)->Put("filler" + std::to_string(round),
                              std::string(2048, 'f'))
                    .ok());
    ASSERT_TRUE((*store)->FlushMemtable().ok());
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ((*store)->Get("k" + std::to_string(i)).status().code(),
              StatusCode::kNotFound);
  }
}

TEST_F(EdgeTest, EmptyValueIsNotATombstone) {
  auto fs = MakeFs("kv-empty");
  KvStoreOptions options;
  options.mode = DurabilityMode::kSplitFt;
  auto store = KvStore::Open(fs.get(), &sim_, &params_, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("k", "").ok());
  auto v = (*store)->Get("k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "");
}

// ------------------------------------------------------- sstable format --

class SstableFormatTest : public EdgeTest {
 protected:
  // Builds a table from `entries` and reopens it.
  Result<std::unique_ptr<SstableReader>> Build(
      const std::map<std::string, std::string>& entries) {
    auto file = dfs_.Open("/sst-test");
    if (!file.ok()) {
      return file.status();
    }
    auto split = std::make_unique<FileAdapter>(std::move(*file));
    RETURN_IF_ERROR(SstableBuilder::Write(split.get(), entries));
    auto rfile = dfs_.Open("/sst-test");
    if (!rfile.ok()) {
      return rfile.status();
    }
    return SstableReader::Open(
        std::make_unique<FileAdapter>(std::move(*rfile)), nullptr);
  }

  // Minimal SplitFile over a DfsFile for direct sstable tests.
  class FileAdapter : public SplitFile {
   public:
    explicit FileAdapter(std::unique_ptr<DfsFile> file)
        : file_(std::move(file)) {}
    Status Append(std::string_view data) override {
      return file_->Append(data);
    }
    Status WriteAt(uint64_t offset, std::string_view data) override {
      return file_->Write(offset, data);
    }
    using SplitFile::Sync;
    Result<SimTime> Sync(const SyncOptions& options) override {
      if (options.deferred) {
        return file_->SyncDeferred();
      }
      RETURN_IF_ERROR(file_->Sync(/*foreground=*/!options.background));
      return SimTime{0};
    }
    Result<std::string> Read(uint64_t offset, uint64_t len) override {
      return file_->Read(offset, len);
    }
    uint64_t Size() const override { return file_->Size(); }
    const std::string& path() const override { return file_->path(); }
    bool ncl_backed() const override { return false; }

   private:
    std::unique_ptr<DfsFile> file_;
  };
};

TEST_F(SstableFormatTest, SingleEntryTable) {
  auto reader = Build({{"only", "entry"}});
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->smallest_key(), "only");
  EXPECT_EQ((*reader)->largest_key(), "only");
  EXPECT_EQ(*(*reader)->Get("only"), "entry");
  EXPECT_FALSE((*reader)->Get("other").ok());
}

TEST_F(SstableFormatTest, ExactBlockBoundary) {
  // Entries sized so a block closes exactly at the 4 KiB threshold.
  std::map<std::string, std::string> entries;
  std::string value(1016, 'v');  // 4+8(key)+4+1016 = 1032 per entry
  for (int i = 0; i < 40; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key-%04d", i);
    entries[key] = value;
  }
  auto reader = Build(entries);
  ASSERT_TRUE(reader.ok());
  EXPECT_GT((*reader)->block_count(), 1u);
  for (const auto& [k, v] : entries) {
    auto got = (*reader)->Get(k);
    ASSERT_TRUE(got.ok()) << k;
    EXPECT_EQ(*got, v);
  }
}

TEST_F(SstableFormatTest, LookupHitsEveryBlockEdge) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 500; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key-%04d", i);
    entries[key] = std::string(100, 'v');
  }
  auto reader = Build(entries);
  ASSERT_TRUE(reader.ok());
  // First and last keys of the table and keys straddling block boundaries.
  EXPECT_TRUE((*reader)->Get("key-0000").ok());
  EXPECT_TRUE((*reader)->Get("key-0499").ok());
  EXPECT_FALSE((*reader)->Get("aaa").ok());       // below range
  EXPECT_FALSE((*reader)->Get("zzz").ok());       // above range
  EXPECT_FALSE((*reader)->Get("key-0250x").ok()); // between keys
}

TEST_F(SstableFormatTest, CorruptFooterDetected) {
  auto file = dfs_.Open("/sst-corrupt");
  ASSERT_TRUE(file.ok());
  FileAdapter adapter(std::move(*file));
  ASSERT_TRUE(SstableBuilder::Write(&adapter, {{"k", "v"}}).ok());
  // Flip the magic in place.
  auto size = adapter.Size();
  ASSERT_TRUE(adapter.WriteAt(size - 1, "X").ok());
  ASSERT_TRUE(adapter.Sync().ok());
  auto rfile = dfs_.Open("/sst-corrupt");
  ASSERT_TRUE(rfile.ok());
  auto reader = SstableReader::Open(
      std::make_unique<FileAdapter>(std::move(*rfile)), nullptr);
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss);
}

TEST_F(SstableFormatTest, CorruptIndexDetected) {
  auto file = dfs_.Open("/sst-corrupt2");
  ASSERT_TRUE(file.ok());
  FileAdapter adapter(std::move(*file));
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 20; ++i) {
    entries["key-" + std::to_string(i)] = "value";
  }
  ASSERT_TRUE(SstableBuilder::Write(&adapter, entries).ok());
  // Corrupt a byte inside the index area (just before the 20-byte footer).
  ASSERT_TRUE(adapter.WriteAt(adapter.Size() - 25, "X").ok());
  ASSERT_TRUE(adapter.Sync().ok());
  auto rfile = dfs_.Open("/sst-corrupt2");
  ASSERT_TRUE(rfile.ok());
  auto reader = SstableReader::Open(
      std::make_unique<FileAdapter>(std::move(*rfile)), nullptr);
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss);
}

TEST_F(SstableFormatTest, TruncatedFileDetected) {
  auto file = dfs_.Open("/sst-tiny");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("tooshort").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  auto rfile = dfs_.Open("/sst-tiny");
  ASSERT_TRUE(rfile.ok());
  auto reader = SstableReader::Open(
      std::make_unique<SstableFormatTest::FileAdapter>(std::move(*rfile)),
      nullptr);
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss);
}

// --------------------------------------------- dfs crash-consistency fuzz --

TEST_F(EdgeTest, DfsCrashConsistencyFuzz) {
  // Random writes/syncs/crashes: after every crash, the durable content
  // must equal the reference at the last successful sync.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    DfsClient client(&cluster_, "fuzz-" + std::to_string(seed));
    std::string path = "/fuzz-" + std::to_string(seed);
    auto file = client.Open(path);
    ASSERT_TRUE(file.ok());
    std::string applied;  // all writes so far
    std::string durable;  // state at the last sync

    for (int i = 0; i < 120; ++i) {
      int action = static_cast<int>(rng.Uniform(10));
      if (action < 6) {
        size_t len = 1 + rng.Uniform(300);
        std::string data(len, static_cast<char>('a' + rng.Uniform(26)));
        if (rng.Bernoulli(0.3) && !applied.empty()) {
          uint64_t offset = rng.Uniform(applied.size());
          ASSERT_TRUE((*file)->Write(offset, data).ok());
          if (applied.size() < offset + data.size()) {
            applied.resize(offset + data.size(), '\0');
          }
          applied.replace(offset, data.size(), data);
        } else {
          ASSERT_TRUE((*file)->Append(data).ok());
          applied += data;
        }
      } else if (action < 8) {
        ASSERT_TRUE((*file)->Sync(rng.Bernoulli(0.5)).ok());
        durable = applied;
      } else {
        client.SimulateCrash();
        auto reopened = client.Open(path);
        ASSERT_TRUE(reopened.ok());
        auto content = (*reopened)->Read(0, (*reopened)->Size());
        ASSERT_TRUE(content.ok());
        ASSERT_EQ(*content, durable) << "crash consistency violated";
        applied = durable;
        file = std::move(reopened);
      }
    }
  }
}

// --------------------------------------- fine-grained file interleavings --

TEST_F(EdgeTest, FineGrainedRandomInterleavingFuzz) {
  for (uint64_t seed = 11; seed <= 16; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    std::string app = "fg-fuzz-" + std::to_string(seed);
    std::string reference;
    {
      auto fs = MakeFs(app);
      SplitOpenOptions opts;
      opts.fine_grained = true;
      opts.small_write_threshold = 512;
      opts.ncl_capacity = 256 << 10;
      auto file = fs->Open("/blob", opts);
      ASSERT_TRUE(file.ok());
      for (int i = 0; i < 40; ++i) {
        bool large = rng.Bernoulli(0.3);
        size_t len = large ? 512 + rng.Uniform(4096) : 1 + rng.Uniform(400);
        std::string data(len, static_cast<char>('a' + rng.Uniform(26)));
        uint64_t offset = rng.Uniform(16 << 10);
        ASSERT_TRUE((*file)->WriteAt(offset, data).ok());
        if (reference.size() < offset + len) {
          reference.resize(offset + len, '\0');
        }
        reference.replace(offset, len, data);
      }
      fs->SimulateCrash();
    }
    sim_.RunUntilIdle();
    auto fs = MakeFs(app);
    SplitOpenOptions opts;
    opts.fine_grained = true;
    opts.small_write_threshold = 512;
    opts.ncl_capacity = 256 << 10;
    auto file = fs->Open("/blob", opts);
    ASSERT_TRUE(file.ok());
    auto content = (*file)->Read(0, (*file)->Size());
    ASSERT_TRUE(content.ok());
    ASSERT_EQ(*content, reference);
    // Cleanup for the shared dfs namespace.
    ASSERT_TRUE(fs->Unlink("/blob").ok());
    // The journal only exists for fine-grained runs of this loop.
    DiscardStatus(fs->Unlink("/blob.ncl-journal"), "edge-test cleanup");
  }
}

}  // namespace
}  // namespace splitft
