file(REMOVE_RECURSE
  "libsplitft_fs.a"
)
