file(REMOVE_RECURSE
  "CMakeFiles/splitft_fs.dir/split_fs.cc.o"
  "CMakeFiles/splitft_fs.dir/split_fs.cc.o.d"
  "libsplitft_fs.a"
  "libsplitft_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitft_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
