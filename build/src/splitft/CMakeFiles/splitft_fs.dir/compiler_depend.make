# Empty compiler generated dependencies file for splitft_fs.
# This may be replaced when dependencies are built.
