file(REMOVE_RECURSE
  "CMakeFiles/splitft_modelcheck.dir/model.cc.o"
  "CMakeFiles/splitft_modelcheck.dir/model.cc.o.d"
  "libsplitft_modelcheck.a"
  "libsplitft_modelcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitft_modelcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
