# Empty compiler generated dependencies file for splitft_modelcheck.
# This may be replaced when dependencies are built.
