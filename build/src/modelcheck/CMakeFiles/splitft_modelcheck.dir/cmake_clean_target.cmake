file(REMOVE_RECURSE
  "libsplitft_modelcheck.a"
)
