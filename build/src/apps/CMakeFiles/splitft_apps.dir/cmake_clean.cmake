file(REMOVE_RECURSE
  "CMakeFiles/splitft_apps.dir/kvell/kvell_mini.cc.o"
  "CMakeFiles/splitft_apps.dir/kvell/kvell_mini.cc.o.d"
  "CMakeFiles/splitft_apps.dir/kvstore/kv_store.cc.o"
  "CMakeFiles/splitft_apps.dir/kvstore/kv_store.cc.o.d"
  "CMakeFiles/splitft_apps.dir/kvstore/sstable.cc.o"
  "CMakeFiles/splitft_apps.dir/kvstore/sstable.cc.o.d"
  "CMakeFiles/splitft_apps.dir/kvstore/wal.cc.o"
  "CMakeFiles/splitft_apps.dir/kvstore/wal.cc.o.d"
  "CMakeFiles/splitft_apps.dir/redis/redis.cc.o"
  "CMakeFiles/splitft_apps.dir/redis/redis.cc.o.d"
  "CMakeFiles/splitft_apps.dir/sqlitelite/sqlite_lite.cc.o"
  "CMakeFiles/splitft_apps.dir/sqlitelite/sqlite_lite.cc.o.d"
  "libsplitft_apps.a"
  "libsplitft_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitft_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
