file(REMOVE_RECURSE
  "libsplitft_apps.a"
)
