# Empty compiler generated dependencies file for splitft_apps.
# This may be replaced when dependencies are built.
