
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/kvell/kvell_mini.cc" "src/apps/CMakeFiles/splitft_apps.dir/kvell/kvell_mini.cc.o" "gcc" "src/apps/CMakeFiles/splitft_apps.dir/kvell/kvell_mini.cc.o.d"
  "/root/repo/src/apps/kvstore/kv_store.cc" "src/apps/CMakeFiles/splitft_apps.dir/kvstore/kv_store.cc.o" "gcc" "src/apps/CMakeFiles/splitft_apps.dir/kvstore/kv_store.cc.o.d"
  "/root/repo/src/apps/kvstore/sstable.cc" "src/apps/CMakeFiles/splitft_apps.dir/kvstore/sstable.cc.o" "gcc" "src/apps/CMakeFiles/splitft_apps.dir/kvstore/sstable.cc.o.d"
  "/root/repo/src/apps/kvstore/wal.cc" "src/apps/CMakeFiles/splitft_apps.dir/kvstore/wal.cc.o" "gcc" "src/apps/CMakeFiles/splitft_apps.dir/kvstore/wal.cc.o.d"
  "/root/repo/src/apps/redis/redis.cc" "src/apps/CMakeFiles/splitft_apps.dir/redis/redis.cc.o" "gcc" "src/apps/CMakeFiles/splitft_apps.dir/redis/redis.cc.o.d"
  "/root/repo/src/apps/sqlitelite/sqlite_lite.cc" "src/apps/CMakeFiles/splitft_apps.dir/sqlitelite/sqlite_lite.cc.o" "gcc" "src/apps/CMakeFiles/splitft_apps.dir/sqlitelite/sqlite_lite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/splitft/CMakeFiles/splitft_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/splitft_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/ncl/CMakeFiles/splitft_ncl.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/splitft_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/splitft_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/splitft_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/splitft_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/splitft_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/splitft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
