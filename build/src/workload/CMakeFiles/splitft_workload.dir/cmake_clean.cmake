file(REMOVE_RECURSE
  "CMakeFiles/splitft_workload.dir/ycsb.cc.o"
  "CMakeFiles/splitft_workload.dir/ycsb.cc.o.d"
  "libsplitft_workload.a"
  "libsplitft_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitft_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
