file(REMOVE_RECURSE
  "libsplitft_workload.a"
)
