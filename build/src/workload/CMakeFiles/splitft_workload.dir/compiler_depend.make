# Empty compiler generated dependencies file for splitft_workload.
# This may be replaced when dependencies are built.
