# Empty compiler generated dependencies file for splitft_harness.
# This may be replaced when dependencies are built.
