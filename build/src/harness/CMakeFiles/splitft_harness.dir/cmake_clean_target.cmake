file(REMOVE_RECURSE
  "libsplitft_harness.a"
)
