file(REMOVE_RECURSE
  "CMakeFiles/splitft_harness.dir/closed_loop.cc.o"
  "CMakeFiles/splitft_harness.dir/closed_loop.cc.o.d"
  "CMakeFiles/splitft_harness.dir/testbed.cc.o"
  "CMakeFiles/splitft_harness.dir/testbed.cc.o.d"
  "libsplitft_harness.a"
  "libsplitft_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitft_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
