file(REMOVE_RECURSE
  "CMakeFiles/splitft_controller.dir/controller.cc.o"
  "CMakeFiles/splitft_controller.dir/controller.cc.o.d"
  "CMakeFiles/splitft_controller.dir/znode_store.cc.o"
  "CMakeFiles/splitft_controller.dir/znode_store.cc.o.d"
  "libsplitft_controller.a"
  "libsplitft_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitft_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
