file(REMOVE_RECURSE
  "libsplitft_controller.a"
)
