# Empty compiler generated dependencies file for splitft_controller.
# This may be replaced when dependencies are built.
