# Empty compiler generated dependencies file for splitft_obs.
# This may be replaced when dependencies are built.
