file(REMOVE_RECURSE
  "libsplitft_obs.a"
)
