file(REMOVE_RECURSE
  "CMakeFiles/splitft_obs.dir/metrics.cc.o"
  "CMakeFiles/splitft_obs.dir/metrics.cc.o.d"
  "CMakeFiles/splitft_obs.dir/trace.cc.o"
  "CMakeFiles/splitft_obs.dir/trace.cc.o.d"
  "libsplitft_obs.a"
  "libsplitft_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitft_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
