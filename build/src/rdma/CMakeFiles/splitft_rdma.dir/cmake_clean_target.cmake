file(REMOVE_RECURSE
  "libsplitft_rdma.a"
)
