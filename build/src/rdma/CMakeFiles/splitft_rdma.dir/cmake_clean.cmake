file(REMOVE_RECURSE
  "CMakeFiles/splitft_rdma.dir/fabric.cc.o"
  "CMakeFiles/splitft_rdma.dir/fabric.cc.o.d"
  "libsplitft_rdma.a"
  "libsplitft_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitft_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
