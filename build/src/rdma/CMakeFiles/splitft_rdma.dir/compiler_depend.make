# Empty compiler generated dependencies file for splitft_rdma.
# This may be replaced when dependencies are built.
