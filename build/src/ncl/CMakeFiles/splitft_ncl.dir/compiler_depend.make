# Empty compiler generated dependencies file for splitft_ncl.
# This may be replaced when dependencies are built.
