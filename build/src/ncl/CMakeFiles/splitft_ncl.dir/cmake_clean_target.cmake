file(REMOVE_RECURSE
  "libsplitft_ncl.a"
)
