file(REMOVE_RECURSE
  "CMakeFiles/splitft_ncl.dir/ncl_client.cc.o"
  "CMakeFiles/splitft_ncl.dir/ncl_client.cc.o.d"
  "CMakeFiles/splitft_ncl.dir/peer.cc.o"
  "CMakeFiles/splitft_ncl.dir/peer.cc.o.d"
  "libsplitft_ncl.a"
  "libsplitft_ncl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitft_ncl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
