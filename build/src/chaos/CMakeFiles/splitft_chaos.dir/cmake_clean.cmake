file(REMOVE_RECURSE
  "CMakeFiles/splitft_chaos.dir/campaign.cc.o"
  "CMakeFiles/splitft_chaos.dir/campaign.cc.o.d"
  "CMakeFiles/splitft_chaos.dir/chaos_engine.cc.o"
  "CMakeFiles/splitft_chaos.dir/chaos_engine.cc.o.d"
  "CMakeFiles/splitft_chaos.dir/fault_plan.cc.o"
  "CMakeFiles/splitft_chaos.dir/fault_plan.cc.o.d"
  "libsplitft_chaos.a"
  "libsplitft_chaos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitft_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
