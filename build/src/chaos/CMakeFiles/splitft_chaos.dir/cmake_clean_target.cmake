file(REMOVE_RECURSE
  "libsplitft_chaos.a"
)
