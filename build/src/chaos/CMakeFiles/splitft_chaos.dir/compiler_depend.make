# Empty compiler generated dependencies file for splitft_chaos.
# This may be replaced when dependencies are built.
