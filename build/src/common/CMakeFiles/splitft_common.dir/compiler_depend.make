# Empty compiler generated dependencies file for splitft_common.
# This may be replaced when dependencies are built.
