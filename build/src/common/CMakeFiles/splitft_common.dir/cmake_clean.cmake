file(REMOVE_RECURSE
  "CMakeFiles/splitft_common.dir/bytes.cc.o"
  "CMakeFiles/splitft_common.dir/bytes.cc.o.d"
  "CMakeFiles/splitft_common.dir/crc32c.cc.o"
  "CMakeFiles/splitft_common.dir/crc32c.cc.o.d"
  "CMakeFiles/splitft_common.dir/histogram.cc.o"
  "CMakeFiles/splitft_common.dir/histogram.cc.o.d"
  "CMakeFiles/splitft_common.dir/logging.cc.o"
  "CMakeFiles/splitft_common.dir/logging.cc.o.d"
  "CMakeFiles/splitft_common.dir/rng.cc.o"
  "CMakeFiles/splitft_common.dir/rng.cc.o.d"
  "CMakeFiles/splitft_common.dir/status.cc.o"
  "CMakeFiles/splitft_common.dir/status.cc.o.d"
  "libsplitft_common.a"
  "libsplitft_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitft_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
