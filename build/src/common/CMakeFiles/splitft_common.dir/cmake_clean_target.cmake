file(REMOVE_RECURSE
  "libsplitft_common.a"
)
