file(REMOVE_RECURSE
  "libsplitft_sim.a"
)
