# Empty compiler generated dependencies file for splitft_sim.
# This may be replaced when dependencies are built.
