file(REMOVE_RECURSE
  "CMakeFiles/splitft_sim.dir/retry.cc.o"
  "CMakeFiles/splitft_sim.dir/retry.cc.o.d"
  "CMakeFiles/splitft_sim.dir/simulation.cc.o"
  "CMakeFiles/splitft_sim.dir/simulation.cc.o.d"
  "libsplitft_sim.a"
  "libsplitft_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitft_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
