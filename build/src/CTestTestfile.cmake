# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("obs")
subdirs("rdma")
subdirs("dfs")
subdirs("blockstore")
subdirs("controller")
subdirs("ncl")
subdirs("chaos")
subdirs("splitft")
subdirs("workload")
subdirs("apps")
subdirs("harness")
subdirs("modelcheck")
