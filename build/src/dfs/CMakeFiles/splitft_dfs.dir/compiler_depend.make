# Empty compiler generated dependencies file for splitft_dfs.
# This may be replaced when dependencies are built.
