file(REMOVE_RECURSE
  "libsplitft_dfs.a"
)
