file(REMOVE_RECURSE
  "CMakeFiles/splitft_dfs.dir/dfs.cc.o"
  "CMakeFiles/splitft_dfs.dir/dfs.cc.o.d"
  "libsplitft_dfs.a"
  "libsplitft_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitft_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
