# Empty compiler generated dependencies file for splitft_blockstore.
# This may be replaced when dependencies are built.
