file(REMOVE_RECURSE
  "libsplitft_blockstore.a"
)
