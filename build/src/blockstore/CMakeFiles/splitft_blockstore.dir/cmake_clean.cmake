file(REMOVE_RECURSE
  "CMakeFiles/splitft_blockstore.dir/block_device.cc.o"
  "CMakeFiles/splitft_blockstore.dir/block_device.cc.o.d"
  "CMakeFiles/splitft_blockstore.dir/local_fs.cc.o"
  "CMakeFiles/splitft_blockstore.dir/local_fs.cc.o.d"
  "libsplitft_blockstore.a"
  "libsplitft_blockstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitft_blockstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
