# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/rdma_test[1]_include.cmake")
include("/root/repo/build/tests/dfs_test[1]_include.cmake")
include("/root/repo/build/tests/controller_test[1]_include.cmake")
include("/root/repo/build/tests/ncl_test[1]_include.cmake")
include("/root/repo/build/tests/obs_test[1]_include.cmake")
include("/root/repo/build/tests/splitfs_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/modelcheck_test[1]_include.cmake")
include("/root/repo/build/tests/ncl_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/apps_edge_test[1]_include.cmake")
include("/root/repo/build/tests/app_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/kvell_test[1]_include.cmake")
include("/root/repo/build/tests/blockstore_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/chaos_test[1]_include.cmake")
