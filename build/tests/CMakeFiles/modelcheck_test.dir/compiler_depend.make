# Empty compiler generated dependencies file for modelcheck_test.
# This may be replaced when dependencies are built.
