file(REMOVE_RECURSE
  "CMakeFiles/ncl_fuzz_test.dir/ncl_fuzz_test.cc.o"
  "CMakeFiles/ncl_fuzz_test.dir/ncl_fuzz_test.cc.o.d"
  "ncl_fuzz_test"
  "ncl_fuzz_test.pdb"
  "ncl_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncl_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
