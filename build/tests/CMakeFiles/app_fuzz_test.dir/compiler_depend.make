# Empty compiler generated dependencies file for app_fuzz_test.
# This may be replaced when dependencies are built.
