file(REMOVE_RECURSE
  "CMakeFiles/app_fuzz_test.dir/app_fuzz_test.cc.o"
  "CMakeFiles/app_fuzz_test.dir/app_fuzz_test.cc.o.d"
  "app_fuzz_test"
  "app_fuzz_test.pdb"
  "app_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
