file(REMOVE_RECURSE
  "CMakeFiles/splitfs_test.dir/splitfs_test.cc.o"
  "CMakeFiles/splitfs_test.dir/splitfs_test.cc.o.d"
  "splitfs_test"
  "splitfs_test.pdb"
  "splitfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
