# Empty compiler generated dependencies file for splitfs_test.
# This may be replaced when dependencies are built.
