# Empty compiler generated dependencies file for blockstore_test.
# This may be replaced when dependencies are built.
