file(REMOVE_RECURSE
  "CMakeFiles/blockstore_test.dir/blockstore_test.cc.o"
  "CMakeFiles/blockstore_test.dir/blockstore_test.cc.o.d"
  "blockstore_test"
  "blockstore_test.pdb"
  "blockstore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blockstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
