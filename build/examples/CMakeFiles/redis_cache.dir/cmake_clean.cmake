file(REMOVE_RECURSE
  "CMakeFiles/redis_cache.dir/redis_cache.cpp.o"
  "CMakeFiles/redis_cache.dir/redis_cache.cpp.o.d"
  "redis_cache"
  "redis_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redis_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
