# Empty compiler generated dependencies file for redis_cache.
# This may be replaced when dependencies are built.
