# Empty compiler generated dependencies file for sql_ledger.
# This may be replaced when dependencies are built.
