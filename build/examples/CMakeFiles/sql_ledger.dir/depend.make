# Empty dependencies file for sql_ledger.
# This may be replaced when dependencies are built.
