file(REMOVE_RECURSE
  "CMakeFiles/sql_ledger.dir/sql_ledger.cpp.o"
  "CMakeFiles/sql_ledger.dir/sql_ledger.cpp.o.d"
  "sql_ledger"
  "sql_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
