
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/kv_server.cpp" "examples/CMakeFiles/kv_server.dir/kv_server.cpp.o" "gcc" "examples/CMakeFiles/kv_server.dir/kv_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/splitft_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/splitft_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/splitft/CMakeFiles/splitft_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/ncl/CMakeFiles/splitft_ncl.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/splitft_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/splitft_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/splitft_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/splitft_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/splitft_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/splitft_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/splitft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
