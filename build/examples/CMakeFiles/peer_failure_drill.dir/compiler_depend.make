# Empty compiler generated dependencies file for peer_failure_drill.
# This may be replaced when dependencies are built.
