file(REMOVE_RECURSE
  "CMakeFiles/peer_failure_drill.dir/peer_failure_drill.cpp.o"
  "CMakeFiles/peer_failure_drill.dir/peer_failure_drill.cpp.o.d"
  "peer_failure_drill"
  "peer_failure_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peer_failure_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
