file(REMOVE_RECURSE
  "../bench/table3_peer_recovery"
  "../bench/table3_peer_recovery.pdb"
  "CMakeFiles/table3_peer_recovery.dir/table3_peer_recovery.cc.o"
  "CMakeFiles/table3_peer_recovery.dir/table3_peer_recovery.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_peer_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
