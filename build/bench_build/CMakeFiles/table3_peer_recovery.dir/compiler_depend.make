# Empty compiler generated dependencies file for table3_peer_recovery.
# This may be replaced when dependencies are built.
