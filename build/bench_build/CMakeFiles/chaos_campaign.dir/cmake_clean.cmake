file(REMOVE_RECURSE
  "../bench/chaos_campaign"
  "../bench/chaos_campaign.pdb"
  "CMakeFiles/chaos_campaign.dir/chaos_campaign.cc.o"
  "CMakeFiles/chaos_campaign.dir/chaos_campaign.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
