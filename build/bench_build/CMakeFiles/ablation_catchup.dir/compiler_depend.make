# Empty compiler generated dependencies file for ablation_catchup.
# This may be replaced when dependencies are built.
