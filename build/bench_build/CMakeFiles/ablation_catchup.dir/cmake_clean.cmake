file(REMOVE_RECURSE
  "../bench/ablation_catchup"
  "../bench/ablation_catchup.pdb"
  "CMakeFiles/ablation_catchup.dir/ablation_catchup.cc.o"
  "CMakeFiles/ablation_catchup.dir/ablation_catchup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_catchup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
