# Empty compiler generated dependencies file for fig10_ycsb.
# This may be replaced when dependencies are built.
