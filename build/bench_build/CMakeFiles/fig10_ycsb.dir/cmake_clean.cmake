file(REMOVE_RECURSE
  "../bench/fig10_ycsb"
  "../bench/fig10_ycsb.pdb"
  "CMakeFiles/fig10_ycsb.dir/fig10_ycsb.cc.o"
  "CMakeFiles/fig10_ycsb.dir/fig10_ycsb.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
