file(REMOVE_RECURSE
  "../bench/table1_strong_vs_weak"
  "../bench/table1_strong_vs_weak.pdb"
  "CMakeFiles/table1_strong_vs_weak.dir/table1_strong_vs_weak.cc.o"
  "CMakeFiles/table1_strong_vs_weak.dir/table1_strong_vs_weak.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_strong_vs_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
