# Empty compiler generated dependencies file for table1_strong_vs_weak.
# This may be replaced when dependencies are built.
