# Empty compiler generated dependencies file for ablation_finegrain.
# This may be replaced when dependencies are built.
