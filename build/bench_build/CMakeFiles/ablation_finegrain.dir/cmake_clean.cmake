file(REMOVE_RECURSE
  "../bench/ablation_finegrain"
  "../bench/ablation_finegrain.pdb"
  "CMakeFiles/ablation_finegrain.dir/ablation_finegrain.cc.o"
  "CMakeFiles/ablation_finegrain.dir/ablation_finegrain.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_finegrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
