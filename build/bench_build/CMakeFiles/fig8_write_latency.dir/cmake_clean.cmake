file(REMOVE_RECURSE
  "../bench/fig8_write_latency"
  "../bench/fig8_write_latency.pdb"
  "CMakeFiles/fig8_write_latency.dir/fig8_write_latency.cc.o"
  "CMakeFiles/fig8_write_latency.dir/fig8_write_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_write_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
