file(REMOVE_RECURSE
  "../bench/table2_write_patterns"
  "../bench/table2_write_patterns.pdb"
  "CMakeFiles/table2_write_patterns.dir/table2_write_patterns.cc.o"
  "CMakeFiles/table2_write_patterns.dir/table2_write_patterns.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_write_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
