# Empty compiler generated dependencies file for table2_write_patterns.
# This may be replaced when dependencies are built.
