file(REMOVE_RECURSE
  "../bench/fig9_write_only"
  "../bench/fig9_write_only.pdb"
  "CMakeFiles/fig9_write_only.dir/fig9_write_only.cc.o"
  "CMakeFiles/fig9_write_only.dir/fig9_write_only.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_write_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
