# Empty compiler generated dependencies file for fig9_write_only.
# This may be replaced when dependencies are built.
