# Empty compiler generated dependencies file for discussion_kvell.
# This may be replaced when dependencies are built.
