file(REMOVE_RECURSE
  "../bench/discussion_kvell"
  "../bench/discussion_kvell.pdb"
  "CMakeFiles/discussion_kvell.dir/discussion_kvell.cc.o"
  "CMakeFiles/discussion_kvell.dir/discussion_kvell.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discussion_kvell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
