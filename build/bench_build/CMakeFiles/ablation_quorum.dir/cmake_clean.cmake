file(REMOVE_RECURSE
  "../bench/ablation_quorum"
  "../bench/ablation_quorum.pdb"
  "CMakeFiles/ablation_quorum.dir/ablation_quorum.cc.o"
  "CMakeFiles/ablation_quorum.dir/ablation_quorum.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_quorum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
