file(REMOVE_RECURSE
  "../bench/fig1_io_sizes"
  "../bench/fig1_io_sizes.pdb"
  "CMakeFiles/fig1_io_sizes.dir/fig1_io_sizes.cc.o"
  "CMakeFiles/fig1_io_sizes.dir/fig1_io_sizes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_io_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
