# Empty compiler generated dependencies file for fig1_io_sizes.
# This may be replaced when dependencies are built.
