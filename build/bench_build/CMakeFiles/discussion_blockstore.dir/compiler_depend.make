# Empty compiler generated dependencies file for discussion_blockstore.
# This may be replaced when dependencies are built.
