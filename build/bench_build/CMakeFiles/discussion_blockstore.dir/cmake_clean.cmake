file(REMOVE_RECURSE
  "../bench/discussion_blockstore"
  "../bench/discussion_blockstore.pdb"
  "CMakeFiles/discussion_blockstore.dir/discussion_blockstore.cc.o"
  "CMakeFiles/discussion_blockstore.dir/discussion_blockstore.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discussion_blockstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
