# Empty compiler generated dependencies file for fig11_recovery.
# This may be replaced when dependencies are built.
