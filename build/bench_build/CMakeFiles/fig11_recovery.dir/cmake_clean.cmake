file(REMOVE_RECURSE
  "../bench/fig11_recovery"
  "../bench/fig11_recovery.pdb"
  "CMakeFiles/fig11_recovery.dir/fig11_recovery.cc.o"
  "CMakeFiles/fig11_recovery.dir/fig11_recovery.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
