# Empty compiler generated dependencies file for fig12_peer_failures.
# This may be replaced when dependencies are built.
