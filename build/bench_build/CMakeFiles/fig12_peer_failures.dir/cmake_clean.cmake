file(REMOVE_RECURSE
  "../bench/fig12_peer_failures"
  "../bench/fig12_peer_failures.pdb"
  "CMakeFiles/fig12_peer_failures.dir/fig12_peer_failures.cc.o"
  "CMakeFiles/fig12_peer_failures.dir/fig12_peer_failures.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_peer_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
