# Empty compiler generated dependencies file for ablation_seqnum.
# This may be replaced when dependencies are built.
