file(REMOVE_RECURSE
  "../bench/ablation_seqnum"
  "../bench/ablation_seqnum.pdb"
  "CMakeFiles/ablation_seqnum.dir/ablation_seqnum.cc.o"
  "CMakeFiles/ablation_seqnum.dir/ablation_seqnum.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_seqnum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
