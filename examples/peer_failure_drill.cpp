// peer_failure_drill: operates NCL through its failure modes — peer
// crashes within and beyond the budget, voluntary memory revocation, a
// restarted peer correctly rejecting recovery, and the space-leak GC.
//
//   ./examples/peer_failure_drill
#include <cstdio>

#include "src/common/bytes.h"
#include "src/harness/testbed.h"

using namespace splitft;

int main() {
  std::printf("== NCL failure drill (f = 1, three peers per file) ==\n\n");
  TestbedOptions testbed_options;
  testbed_options.num_peers = 6;
  Testbed testbed(testbed_options);

  auto server = testbed.MakeServer("drill");
  SplitOpenOptions opts;
  opts.oncl = true;
  opts.ncl_capacity = 1 << 20;
  auto wal = server->fs->Open("/drill/wal", opts);
  if (!wal.ok()) {
    return 1;
  }
  (void)(*wal)->Append("record-1;");
  (void)(*wal)->Sync();
  auto apmap = testbed.controller()->GetApMap("drill", "/drill/wal");
  std::printf("log lives on: ");
  for (const std::string& name : apmap->peers) {
    std::printf("%s ", name.c_str());
  }
  std::printf("\n\n");

  // --- 1. One peer crashes: writes continue, peer replaced + caught up.
  LogPeer* victim = testbed.directory()->Lookup(apmap->peers[0]);
  std::printf("[1] crashing %s...\n", victim->name().c_str());
  victim->Crash();
  SimTime t0 = testbed.sim()->Now();
  Status st = (*wal)->Append("record-2;");
  if (st.ok()) {
    st = (*wal)->Sync();  // the failure surfaces when the append commits
  }
  std::printf("    next append: %s in %s (replacement + catch-up charged)\n",
              st.ToString().c_str(),
              HumanDuration(testbed.sim()->Now() - t0).c_str());
  apmap = testbed.controller()->GetApMap("drill", "/drill/wal");
  std::printf("    new peer set: ");
  for (const std::string& name : apmap->peers) {
    std::printf("%s ", name.c_str());
  }
  std::printf("\n\n");

  // --- 2. A peer revokes its memory voluntarily (memory pressure).
  LogPeer* revoker = testbed.directory()->Lookup(apmap->peers[1]);
  std::printf("[2] %s revokes its region (memory pressure)...\n",
              revoker->name().c_str());
  (void)revoker->Revoke("drill", "/drill/wal");
  st = (*wal)->Append("record-3;");
  if (st.ok()) {
    st = (*wal)->Sync();
  }
  std::printf("    next append: %s (revocation handled as a peer failure)\n",
              st.ToString().c_str());

  // --- 3. Crashed peer restarts: it must reject recovery lookups (its
  // mr-map is gone) instead of serving stale garbage.
  (void)victim->Restart();
  auto lookup = victim->LookupForRecovery("drill", "/drill/wal");
  std::printf("\n[3] restarted %s asked for the region: %s (correct: its "
              "mr-map died with it)\n",
              victim->name().c_str(), lookup.status().ToString().c_str());

  // --- 4. Space-leak GC: an allocation whose app vanished before writing
  // the ap-map gets reclaimed once the app moves on.
  std::printf("\n[4] leaking an allocation (app crashes before recording "
              "the ap-map)...\n");
  auto epoch = testbed.controller()->BumpAppEpoch("drill");
  LogPeer* lender = testbed.directory()->Lookup("peer-5");
  (void)lender->Allocate("drill", "/drill/leaked", 1 << 20, *epoch);
  std::printf("    %s now holds %zu region(s), %s available\n",
              lender->name().c_str(), lender->active_regions(),
              HumanBytes(lender->available_bytes()).c_str());
  (void)testbed.controller()->BumpAppEpoch("drill");  // app moved on
  testbed.sim()->Advance(Millis(100));
  int freed = lender->RunLeakGc();
  std::printf("    leak GC freed %d region(s); %s available again\n", freed,
              HumanBytes(lender->available_bytes()).c_str());

  // --- 5. Beyond the budget: both remaining original peers die; with
  // spares exhausted for this file, writes correctly go unavailable...
  std::printf("\n[5] crashing every peer holding the log...\n");
  apmap = testbed.controller()->GetApMap("drill", "/drill/wal");
  for (const std::string& name : apmap->peers) {
    LogPeer* peer = testbed.directory()->Lookup(name);
    if (peer != nullptr && peer->alive()) {
      peer->Crash();
    }
  }
  // Also exhaust the spare pool so replacement cannot help.
  for (int i = 0; i < testbed.num_peers(); ++i) {
    if (testbed.peer(i)->alive()) {
      testbed.peer(i)->Crash();
    }
  }
  st = (*wal)->Append("record-4;");
  if (st.ok()) {
    st = (*wal)->Sync();
  }
  std::printf("    append with no quorum and no spares: %s\n",
              st.ToString().c_str());
  std::printf("    (NCL makes the file unavailable rather than lose "
              "acknowledged data)\n");
  return st.ok() ? 1 : 0;
}
