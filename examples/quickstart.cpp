// Quickstart: the NCL abstraction end to end in ~80 lines.
//
// Builds a simulated cluster (controller + three log peers + a dfs), opens
// a file with the O_NCL flag through SplitFs, writes a few records, crashes
// the application server, and recovers the data from the peers' memory —
// demonstrating strong durability at microsecond write latency.
//
//   ./examples/quickstart
#include <cstdio>

#include "src/common/bytes.h"
#include "src/common/logging.h"
#include "src/harness/testbed.h"

using namespace splitft;

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("== SplitFT quickstart ==\n\n");

  // A simulated datacenter: 4 compute nodes lending spare memory as log
  // peers, a ZooKeeper-like controller, and a CephFS-like dfs.
  TestbedOptions testbed_options;
  testbed_options.tracing = true;  // for the recovery phase breakdown below
  Testbed testbed(testbed_options);
  std::printf("cluster: %d log peers, each lending %s of spare memory\n",
              testbed.num_peers(), HumanBytes(4ull << 30).c_str());

  // --- Incarnation 1: an application server writes a durable log. -------
  {
    auto server = testbed.MakeServer("quickstart-app");
    SplitOpenOptions opts;
    opts.oncl = true;             // the paper's O_NCL open flag
    opts.ncl_capacity = 1 << 20;  // reserve 1 MiB per peer for this log
    auto wal = server->fs->Open("/app/wal", opts);
    if (!wal.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   wal.status().ToString().c_str());
      return 1;
    }

    SimTime t0 = testbed.sim()->Now();
    (void)(*wal)->Append("txn-1: credit alice 100;");
    (void)(*wal)->Append("txn-2: debit bob 40;");
    (void)(*wal)->Append("txn-3: credit carol 7;");
    (void)(*wal)->Sync();  // drain the pipeline: all three now committed
    SimTime per_write = (testbed.sim()->Now() - t0) / 3;
    std::printf("wrote 3 log records, replicated to a majority of 3 peers\n");
    std::printf("  -> %s per committed write (pipelined, crash-safe!)\n",
                HumanDuration(per_write).c_str());

    // For comparison: the same write synced to the dfs.
    auto dfs_file = server->fs->Open("/app/dfs-log", SplitOpenOptions{});
    (void)(*dfs_file)->Append("txn-1: credit alice 100;");
    t0 = testbed.sim()->Now();
    (void)(*dfs_file)->Sync();
    std::printf("  -> the same durability via dfs fsync: %s (~500x slower)\n",
                HumanDuration(testbed.sim()->Now() - t0).c_str());

    // The server crashes without any clean shutdown.
    testbed.CrashServer(server.get());
    std::printf("\n*** application server crashed ***\n\n");
  }
  testbed.sim()->RunUntilIdle();

  // --- Incarnation 2: restart (possibly on different hardware) and
  // recover everything from the log peers' memory. -----------------------
  auto server = testbed.MakeServer("quickstart-app");
  std::printf("restarted; ncl files recorded on the controller:\n");
  for (const std::string& file : server->fs->ncl()->ListFiles()) {
    std::printf("  %s\n", file.c_str());
  }
  SplitOpenOptions opts;
  opts.oncl = true;
  auto wal = server->fs->Open("/app/wal", opts);  // triggers recovery
  if (!wal.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 wal.status().ToString().c_str());
    return 1;
  }
  auto contents = (*wal)->Read(0, (*wal)->Size());
  std::printf("recovered %s of log:\n  %s\n",
              HumanBytes((*wal)->Size()).c_str(), contents->c_str());

  // The tracer's "ncl.recover.*" phase spans are the recovery breakdown.
  const auto& spans = testbed.tracer()->aggregates();
  auto phase_time = [&](const char* name) {
    auto it = spans.find(name);
    return it == spans.end() ? SimTime{0} : it->second.total;
  };
  std::printf("recovery breakdown: get-peers=%s connect=%s rdma-read=%s "
              "sync-peers=%s\n",
              HumanDuration(phase_time("ncl.recover.get_peers")).c_str(),
              HumanDuration(phase_time("ncl.recover.connect")).c_str(),
              HumanDuration(phase_time("ncl.recover.rdma_read")).c_str(),
              HumanDuration(phase_time("ncl.recover.sync_peers")).c_str());
  std::printf("\nall acknowledged writes survived the crash. done.\n");
  return 0;
}
