// kv_server: the mini-RocksDB on SplitFT serving a YCSB-A workload,
// surviving an unclean crash mid-run with zero acknowledged-write loss.
//
//   ./examples/kv_server
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/harness/closed_loop.h"
#include "src/harness/testbed.h"

using namespace splitft;

int main() {
  std::printf("== mini-RocksDB on SplitFT ==\n\n");
  Testbed testbed;

  // Keep track of acknowledged writes so we can audit them after recovery.
  std::vector<KvWrite> acked;

  {
    auto server = testbed.MakeServer("kv-example");
    KvStoreOptions options;
    options.mode = DurabilityMode::kSplitFt;
    auto store = testbed.StartKvStore(server.get(), options);
    if (!store.ok()) {
      return 1;
    }
    std::printf("loading 30,000 records...\n");
    (void)Testbed::LoadRecords(store->get(), 30000);
    std::printf("  memtable entries: %zu, L0 tables: %zu, L1 tables: %zu\n",
                (*store)->memtable_entries(), (*store)->l0_tables(),
                (*store)->l1_tables());

    std::printf("running YCSB-A (50/50 read-update, zipfian), 20 clients...\n");
    YcsbWorkload workload(YcsbWorkloadKind::kA, 30000, 7);
    HarnessOptions harness_options;
    harness_options.num_clients = 20;
    harness_options.target_ops = 50000;
    ClosedLoopHarness harness(testbed.sim(), store->get(), &workload,
                              harness_options);
    HarnessResult result = harness.Run();
    std::printf("  throughput: %.1f KOps/s, mean latency %s, p99 %s\n",
                result.throughput_kops,
                HumanDuration(static_cast<SimTime>(result.latency.Mean()))
                    .c_str(),
                HumanDuration(static_cast<SimTime>(result.latency.P99()))
                    .c_str());

    // A few explicitly-acknowledged writes to audit later.
    for (int i = 0; i < 100; ++i) {
      KvWrite w{"audit-key-" + std::to_string(i),
                "audit-value-" + std::to_string(i)};
      if ((*store)->Put(w.key, w.value).ok()) {
        acked.push_back(w);
      }
    }
    std::printf("acknowledged %zu audit writes\n", acked.size());

    testbed.CrashServer(server.get());
    std::printf("\n*** server crashed (no clean shutdown) ***\n\n");
  }
  testbed.sim()->RunUntilIdle();

  auto server = testbed.MakeServer("kv-example");
  KvStoreOptions options;
  options.mode = DurabilityMode::kSplitFt;
  SimTime t0 = testbed.sim()->Now();
  auto store = testbed.StartKvStore(server.get(), options);
  if (!store.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }
  std::printf("recovered in %s (replayed %llu WAL batches from NCL)\n",
              HumanDuration(testbed.sim()->Now() - t0).c_str(),
              static_cast<unsigned long long>((*store)->recovered_batches()));

  int found = 0;
  for (const KvWrite& w : acked) {
    auto v = (*store)->Get(w.key);
    if (v.ok() && *v == w.value) {
      found++;
    }
  }
  std::printf("audit: %d/%zu acknowledged writes recovered intact\n", found,
              acked.size());
  return found == static_cast<int>(acked.size()) ? 0 : 1;
}
