// redis_cache: the mini-Redis data-structure store on SplitFT — strings,
// hashes, lists, and counters, all durable through the NCL-backed AOF,
// with an RDB rewrite and a crash/recovery cycle.
//
//   ./examples/redis_cache
#include <cstdio>

#include "src/common/bytes.h"
#include "src/harness/testbed.h"

using namespace splitft;

int main() {
  std::printf("== mini-Redis on SplitFT ==\n\n");
  Testbed testbed;
  {
    auto server = testbed.MakeServer("redis-example");
    RedisOptions options;
    options.mode = DurabilityMode::kSplitFt;
    options.aof_rewrite_bytes = 1 << 20;  // force an AOF rewrite mid-run
    auto redis = testbed.StartRedis(server.get(), options);
    if (!redis.ok()) {
      return 1;
    }

    std::printf("sessions as hashes, a job queue as a list, page counters:\n");
    (void)(*redis)->HSet("session:42", "user", "ada");
    (void)(*redis)->HSet("session:42", "theme", "dark");
    (void)(*redis)->LPush("jobs", "encode-video-7");
    (void)(*redis)->LPush("jobs", "send-email-19");
    for (int i = 0; i < 5; ++i) {
      (void)(*redis)->Incr("hits:/index.html");
    }
    (void)(*redis)->Put("motd", "remote memory is the new disk");

    // Bulk-churn to trigger the AOF rewrite (RDB snapshot + new AOF).
    for (int i = 0; i < 12000; ++i) {
      (void)(*redis)->Put("churn-" + std::to_string(i % 300),
                          std::string(100, 'x'));
    }
    std::printf("after churn: %d RDB snapshot(s), AOF is %s\n",
                (*redis)->rdb_snapshots(),
                HumanBytes((*redis)->aof_bytes()).c_str());

    testbed.CrashServer(server.get());
    std::printf("\n*** redis server crashed ***\n\n");
  }
  testbed.sim()->RunUntilIdle();

  auto server = testbed.MakeServer("redis-example");
  RedisOptions options;
  options.mode = DurabilityMode::kSplitFt;
  options.aof_rewrite_bytes = 1 << 20;
  SimTime t0 = testbed.sim()->Now();
  auto redis = testbed.StartRedis(server.get(), options);
  if (!redis.ok()) {
    std::fprintf(stderr, "recovery failed\n");
    return 1;
  }
  std::printf("recovered in %s (RDB load + %llu AOF commands replayed)\n",
              HumanDuration(testbed.sim()->Now() - t0).c_str(),
              static_cast<unsigned long long>((*redis)->replayed_commands()));

  auto user = (*redis)->HGet("session:42", "user");
  auto job = (*redis)->LIndex("jobs", -1);
  auto hits = (*redis)->Get("hits:/index.html");
  auto motd = (*redis)->Get("motd");
  std::printf("  session:42.user = %s\n", user.ok() ? user->c_str() : "LOST");
  std::printf("  oldest job      = %s\n", job.ok() ? job->c_str() : "LOST");
  std::printf("  hits            = %s\n", hits.ok() ? hits->c_str() : "LOST");
  std::printf("  motd            = %s\n", motd.ok() ? motd->c_str() : "LOST");
  bool ok = user.ok() && job.ok() && hits.ok() && motd.ok() &&
            *hits == "5" && *job == "encode-video-7";
  std::printf("\n%s\n", ok ? "all data structures intact." : "DATA LOST!");
  return ok ? 0 : 1;
}
