// sql_ledger: the mini-SQLite as a transactional ledger on SplitFT. Shows
// multi-row atomic transactions through the circular WAL (overwrite
// reclaim), checkpointing into the database file, and crash recovery.
//
//   ./examples/sql_ledger
#include <cstdio>
#include <string>

#include "src/common/bytes.h"
#include "src/harness/testbed.h"

using namespace splitft;

namespace {

int Balance(SqliteLite* db, const std::string& account) {
  auto v = db->Get("balance:" + account);
  return v.ok() ? std::atoi(v->c_str()) : 0;
}

Status Transfer(SqliteLite* db, const std::string& from,
                const std::string& to, int amount, int txn_id) {
  int from_balance = Balance(db, from) - amount;
  int to_balance = Balance(db, to) + amount;
  // One atomic transaction: both balances plus a journal row.
  return db->ExecTransaction({
      {"balance:" + from, std::to_string(from_balance)},
      {"balance:" + to, std::to_string(to_balance)},
      {"journal:" + std::to_string(txn_id),
       from + "->" + to + ":" + std::to_string(amount)},
  });
}

}  // namespace

int main() {
  std::printf("== mini-SQLite ledger on SplitFT ==\n\n");
  Testbed testbed;
  int txns = 0;
  {
    auto server = testbed.MakeServer("ledger");
    SqliteLiteOptions options;
    options.mode = DurabilityMode::kSplitFt;
    options.wal_capacity = 64 << 10;  // small circular WAL: it will wrap
    auto db = testbed.StartSqlite(server.get(), options);
    if (!db.ok()) {
      return 1;
    }
    (void)(*db)->ExecTransaction(
        {{"balance:alice", "1000"}, {"balance:bob", "1000"}});

    std::printf("running 1,000 transfers through a %s circular WAL...\n",
                HumanBytes(64 << 10).c_str());
    for (int i = 0; i < 1000; ++i) {
      const char* from = i % 2 == 0 ? "alice" : "bob";
      const char* to = i % 2 == 0 ? "bob" : "alice";
      if (Transfer(db->get(), from, to, 1 + i % 7, i).ok()) {
        txns++;
      }
    }
    std::printf("  committed %d txns; WAL generation %llu (wrapped %d times "
                "via checkpoint+overwrite), write offset %s\n",
                txns,
                static_cast<unsigned long long>((*db)->wal_generation()),
                (*db)->checkpoints(),
                HumanBytes((*db)->wal_write_offset()).c_str());
    std::printf("  alice=%d bob=%d (sum %d)\n", Balance(db->get(), "alice"),
                Balance(db->get(), "bob"),
                Balance(db->get(), "alice") + Balance(db->get(), "bob"));

    testbed.CrashServer(server.get());
    std::printf("\n*** database server crashed mid-flight ***\n\n");
  }
  testbed.sim()->RunUntilIdle();

  auto server = testbed.MakeServer("ledger");
  SqliteLiteOptions options;
  options.mode = DurabilityMode::kSplitFt;
  options.wal_capacity = 64 << 10;
  SimTime t0 = testbed.sim()->Now();
  auto db = testbed.StartSqlite(server.get(), options);
  if (!db.ok()) {
    std::fprintf(stderr, "recovery failed\n");
    return 1;
  }
  std::printf("recovered in %s: db image + %llu WAL frames replayed\n",
              HumanDuration(testbed.sim()->Now() - t0).c_str(),
              static_cast<unsigned long long>((*db)->replayed_frames()));
  int alice = Balance(db->get(), "alice");
  int bob = Balance(db->get(), "bob");
  std::printf("  alice=%d bob=%d (sum %d)\n", alice, bob, alice + bob);
  bool conserved = alice + bob == 2000;
  std::printf("\nmoney %s.\n",
              conserved ? "conserved across the crash" : "WAS LOST");
  return conserved ? 0 : 1;
}
